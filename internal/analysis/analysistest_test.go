package analysis

// Fixture harness: loads packages from testdata/src/<path>, type-checks
// them with a self-contained importer (fixture dirs double as fake
// stdlib packages — math/rand, time, fmt, ... — so no export data or
// network is needed), runs analyzers, and compares diagnostics against
// `// want` comments in the fixture source:
//
//	_ = time.Now() // want `time\.Now reads the wall clock`
//
// Each backtick-quoted regexp must match one diagnostic on the
// comment's line; a numeric offset targets a nearby line instead
// (`// want+1 ...` expects the finding one line below), which is how
// fixtures assert on diagnostics positioned at //lint:ignore comments
// that occupy the whole line themselves.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// fixtureImporter type-checks fixture packages on demand, resolving
// import paths relative to the testdata/src root.
type fixtureImporter struct {
	fset *token.FileSet
	root string
	pkgs map[string]*types.Package
}

func (l *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	p, _, _, err := l.load(path)
	return p, err
}

func (l *fixtureImporter) load(path string) (*types.Package, []*ast.File, *types.Info, error) {
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var files []*ast.File
	for _, e := range entries { // ReadDir returns sorted entries
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, nil, fmt.Errorf("no .go files in fixture %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("type-checking fixture %s: %v", path, err)
	}
	l.pkgs[path] = pkg
	return pkg, files, info, nil
}

// loadFixture loads testdata/src/<path> as a fully type-checked Package.
func loadFixture(t *testing.T, path string) *Package {
	t.Helper()
	l := &fixtureImporter{
		fset: token.NewFileSet(),
		root: filepath.Join("testdata", "src"),
		pkgs: map[string]*types.Package{},
	}
	pkg, files, info, err := l.load(path)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Fset: l.fset, Files: files, Pkg: pkg, Info: info}
}

// want is one expectation parsed from a fixture comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

var wantComment = regexp.MustCompile("^// want([+-][0-9]+)? ((?:\\s*`[^`]+`)+)\\s*$")
var wantPattern = regexp.MustCompile("`([^`]+)`")

func collectWants(t *testing.T, pkg *Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantComment.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				offset := 0
				if m[1] != "" {
					offset, _ = strconv.Atoi(m[1])
				}
				for _, pm := range wantPattern.FindAllStringSubmatch(m[2], -1) {
					re, err := regexp.Compile(pm[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pm[1], err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line + offset, re: re})
				}
			}
		}
	}
	return wants
}

// runFixture loads a fixture, runs the analyzers over it, and checks the
// diagnostics against the fixture's want comments, returning the
// diagnostics for any extra assertions.
func runFixture(t *testing.T, path string, analyzers []*Analyzer, opts Options) []Diagnostic {
	t.Helper()
	pkg := loadFixture(t, path)
	diags := Run(pkg, analyzers, opts)
	wants := collectWants(t, pkg)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.met || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.String()) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
	return diags
}
