package analysis

import (
	"go/types"
	"sort"
)

// deterministicPkgs are the simulation packages whose runs must be
// bit-identical for a given seed. Inside them, all randomness must come
// from a seeded *rand.Rand (netsim.Sim.Rand) and all time from the
// virtual clock; the wall clock and the global math/rand state are
// process-wide and unordered across runs and goroutines.
//
// internal/obs and internal/experiment are deliberately absent: obs
// timers and the runner's progress reporting are wall-clock-only
// instrumentation that never feeds back into simulation state.
var deterministicPkgs = []string{
	"internal/bgp",
	"internal/netsim",
	"internal/dataplane",
	"internal/dns",
	"internal/core",
	"internal/scenario",
	"internal/iptrie",
	"internal/topology",
	"internal/collector",
	"internal/traffic",
}

func isDeterministicPkg(path string) bool {
	for _, p := range deterministicPkgs {
		if pkgPathHasSuffix(path, p) {
			return true
		}
	}
	return false
}

// detrandAllowed lists the package-level functions of the random packages
// that are safe in deterministic code: constructors that produce a seeded
// generator rather than drawing from the global one.
var detrandAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
	"NewZipf":    true, // takes a *Rand; draws through it
}

// timeForbidden lists the package-level time functions that read or
// schedule against the wall clock. Types (Duration, Time) and pure
// conversions remain usable.
var timeForbidden = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "After": true, "Tick": true,
	"NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

// AnalyzerDetrand (cdnlint/detrand) forbids global randomness and wall
// clock reads inside the deterministic simulation packages: package-level
// math/rand and math/rand/v2 functions (which draw from the process-wide
// generator), crypto/rand, and time.Now/Since/Until and friends. Methods
// on an explicitly seeded *rand.Rand are always allowed.
var AnalyzerDetrand = &Analyzer{
	Name: "detrand",
	Doc: "forbid global math/rand, crypto/rand, and wall-clock time in deterministic simulation packages; " +
		"draw randomness from the seeded netsim.Sim.Rand and time from the virtual clock",
	Run: runDetrand,
}

func runDetrand(pass *Pass) {
	if !isDeterministicPkg(pass.Pkg.Path()) {
		return
	}
	// Info.Uses iteration is unordered; sort the findings by position so
	// the analyzer itself honors the invariant it enforces.
	var finds []Diagnostic
	for id, obj := range pass.Info.Uses {
		fn, ok := obj.(*types.Func)
		var pkgPath, name string
		if ok {
			if fn.Pkg() == nil || fn.Type().(*types.Signature).Recv() != nil {
				continue // builtins and methods (seeded *rand.Rand draws)
			}
			pkgPath, name = fn.Pkg().Path(), fn.Name()
		} else if v, okv := obj.(*types.Var); okv && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			pkgPath, name = v.Pkg().Path(), v.Name() // e.g. crypto/rand.Reader
		} else {
			continue
		}
		var msg string
		switch pkgPath {
		case "math/rand", "math/rand/v2":
			if detrandAllowed[name] {
				continue
			}
			msg = "global " + pkgPath + "." + name + " draws from the process-wide generator; " +
				"use the simulation's seeded *rand.Rand (netsim.Sim.Rand)"
		case "crypto/rand":
			msg = "crypto/rand." + name + " is non-deterministic; " +
				"use the simulation's seeded *rand.Rand (netsim.Sim.Rand)"
		case "time":
			if !timeForbidden[name] {
				continue
			}
			msg = "time." + name + " reads the wall clock; deterministic packages must use " +
				"virtual time (netsim.Sim.Now)"
		default:
			continue
		}
		finds = append(finds, Diagnostic{
			Check:   pass.Analyzer.Name,
			Pos:     pass.Fset.Position(id.Pos()),
			Message: msg,
		})
	}
	sort.Slice(finds, func(i, j int) bool {
		a, b := finds[i], finds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Offset < b.Pos.Offset
	})
	*pass.diags = append(*pass.diags, finds...)
}
