package trace

import (
	"net/netip"
	"testing"

	"bestofboth/internal/bgp"
	"bestofboth/internal/dataplane"
	"bestofboth/internal/netsim"
	"bestofboth/internal/topology"
)

var (
	uPrefix = netip.MustParsePrefix("184.164.249.0/24")
	aPrefix = netip.MustParsePrefix("184.164.250.0/24")
	uAddr   = netip.MustParseAddr("184.164.249.10")
	aAddr   = netip.MustParseAddr("184.164.250.10")
)

// c1Topo reproduces the Appendix C.1 situation in miniature:
//
//	      T (transit)
//	     /|
//	(peer)|(customer)
//	   /  |
//	  W   R (R&E gigapop)
//	  |   |
//	 S1   S2         two CDN sites
//	  target is customer of T
//
// S1 announces u (unicast) and a (un-prepended); S2 announces a with
// prepending via R. T prefers its customer link to R over its peer link to
// W, so a-traffic diverges to S2 while u-traffic goes to S1.
func c1Topo(t *testing.T) (*topology.Topology, map[string]topology.NodeID) {
	t.Helper()
	b := topology.NewBuilder()
	ids := map[string]topology.NodeID{}
	add := func(name string, asn topology.ASN, class topology.Class, x float64) {
		ids[name] = b.AddNode(asn, name, class, topology.Point{X: x})
	}
	add("T", 10, topology.ClassTransit, 0)
	add("W", 20, topology.ClassTransit, 1)
	add("R", 30, topology.ClassREN, 2)
	add("S1", 47065, topology.ClassCDN, 3)
	add("S2", 47065, topology.ClassCDN, 4)
	add("tgt", 50, topology.ClassStub, 5)
	b.Link(ids["T"], ids["W"], topology.RelPeer, 0.001)
	b.Link(ids["R"], ids["T"], topology.RelProvider, 0.001)
	b.Link(ids["S1"], ids["W"], topology.RelProvider, 0.001)
	b.Link(ids["S2"], ids["R"], topology.RelProvider, 0.001)
	b.Link(ids["tgt"], ids["T"], topology.RelProvider, 0.001)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo, ids
}

func TestAnalyzeClassifiesRelationshipDivergence(t *testing.T) {
	topo, ids := c1Topo(t)
	sim := netsim.New(1)
	net := bgp.New(sim, topo, bgp.Config{MRAI: 30, MRAIJitter: 0.2, ProcMin: 0.01, ProcMax: 0.05})
	plane := dataplane.New(net)

	net.Originate(ids["S1"], uPrefix, nil)
	net.Originate(ids["S1"], aPrefix, nil)
	net.Originate(ids["S2"], aPrefix, &bgp.OriginPolicy{Prepend: 5})
	sim.Run()

	res, err := Analyze(plane, topo, []topology.NodeID{ids["tgt"]}, uAddr, aAddr, ids["S1"])
	if err != nil {
		t.Fatal(err)
	}
	if res.Compared != 1 || res.ToIntended != 0 || len(res.Diverged) != 1 {
		t.Fatalf("result = %+v", res)
	}
	d := res.Diverged[0]
	if d.Diverging != ids["T"] {
		t.Fatalf("diverging AS = %d, want T", d.Diverging)
	}
	if d.NextUnicast != ids["W"] || d.NextAnycast != ids["R"] {
		t.Fatalf("next hops = %d, %d", d.NextUnicast, d.NextAnycast)
	}
	if d.RelUnicast != topology.RelPeer || d.RelAnycast != topology.RelCustomer {
		t.Fatalf("relationships = %v, %v", d.RelUnicast, d.RelAnycast)
	}
	if !d.ExplainedByRelationship {
		t.Fatal("customer-over-peer divergence not flagged as relationship-explained")
	}
	if !d.AnycastViaRE {
		t.Fatal("R&E next hop not flagged")
	}
	if res.ViaRE != 1 || res.ByRelationship != 1 || res.RelationshipComparable != 1 {
		t.Fatalf("aggregates = %+v", res)
	}
}

func TestAnalyzeCountsIntended(t *testing.T) {
	topo, ids := c1Topo(t)
	sim := netsim.New(1)
	net := bgp.New(sim, topo, bgp.Config{MRAI: 30, MRAIJitter: 0.2, ProcMin: 0.01, ProcMax: 0.05})
	plane := dataplane.New(net)
	// Only S1 announces both prefixes: no divergence possible.
	net.Originate(ids["S1"], uPrefix, nil)
	net.Originate(ids["S1"], aPrefix, nil)
	sim.Run()
	res, err := Analyze(plane, topo, []topology.NodeID{ids["tgt"]}, uAddr, aAddr, ids["S1"])
	if err != nil {
		t.Fatal(err)
	}
	if res.Compared != 1 || res.ToIntended != 1 || len(res.Diverged) != 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestAnalyzeSkipsUnmeasurable(t *testing.T) {
	topo, ids := c1Topo(t)
	sim := netsim.New(1)
	net := bgp.New(sim, topo, bgp.Config{MRAI: 30, MRAIJitter: 0.2, ProcMin: 0.01, ProcMax: 0.05})
	plane := dataplane.New(net)
	net.Originate(ids["S1"], uPrefix, nil) // anycast prefix never announced
	sim.Run()
	res, err := Analyze(plane, topo, []topology.NodeID{ids["tgt"]}, uAddr, aAddr, ids["S1"])
	if err != nil {
		t.Fatal(err)
	}
	if res.Compared != 0 {
		t.Fatalf("unmeasurable target counted: %+v", res)
	}
}

func TestRelRank(t *testing.T) {
	if relRank(topology.RelCustomer) <= relRank(topology.RelPeer) ||
		relRank(topology.RelPeer) <= relRank(topology.RelProvider) {
		t.Fatal("relationship ranking broken")
	}
}
