// Package trace reproduces the paper's reverse-path analysis (Appendix
// C.1): for targets that proactive-prepending fails to steer, compare the
// target's forwarding path toward a unicast prefix (announced only at the
// intended site) with its path toward a prepended anycast prefix, identify
// the diverging AS, and classify why the divergence happens — R&E next
// hops, and relationship preference (customer > peer > provider) at the
// diverging AS.
//
// The paper measures these paths with reverse traceroute; the simulator
// reads them directly from the FIB walks, which measure the same AS-level
// paths without the Record-Route coverage loss the paper reports (§C.1.1).
package trace

import (
	"fmt"
	"net/netip"

	"bestofboth/internal/dataplane"
	"bestofboth/internal/topology"
)

// Divergence describes where and why one target's paths to the unicast and
// prepended-anycast prefixes split.
type Divergence struct {
	Target topology.NodeID
	// Diverging is the last AS common to both paths (§C.1.2).
	Diverging topology.NodeID
	// NextUnicast / NextAnycast are the first hops after the divergence on
	// each path.
	NextUnicast, NextAnycast topology.NodeID
	// RelUnicast / RelAnycast are the diverging AS's relationships toward
	// those next hops.
	RelUnicast, RelAnycast topology.Rel
	// AnycastViaRE reports whether the anycast-side next hop is an R&E
	// network while the unicast side goes commercial.
	AnycastViaRE bool
	// ExplainedByRelationship reports whether the divergence follows
	// standard BGP business preference: the anycast-side link is strictly
	// preferred (customer > peer > provider) over the unicast-side link.
	ExplainedByRelationship bool
}

// Result aggregates the §C.1.3 statistics.
type Result struct {
	// Compared is the number of targets with measurable paths to both
	// prefixes.
	Compared int
	// ToIntended is how many of them route to the intended site on the
	// anycast prefix.
	ToIntended int
	// Diverged holds one entry per target that routes elsewhere.
	Diverged []Divergence
	// ViaRE counts divergences where the anycast path turns into an R&E
	// network while unicast goes commercial.
	ViaRE int
	// ByRelationship counts divergences explained by relationship
	// preference.
	ByRelationship int
	// RelationshipComparable counts divergences where both links could be
	// classified.
	RelationshipComparable int
}

// relRank orders relationships by export preference: customer routes are
// most preferred.
func relRank(r topology.Rel) int {
	switch r {
	case topology.RelCustomer:
		return 2
	case topology.RelPeer:
		return 1
	default:
		return 0
	}
}

// Analyze walks each target's forwarding paths to the unicast address
// (announced only at the intended site) and the prepended-anycast address,
// then classifies every divergence. intended is the node that must attract
// the traffic for steering to count as successful.
func Analyze(plane *dataplane.Plane, topo *topology.Topology, targets []topology.NodeID,
	unicastAddr, anycastAddr netip.Addr, intended topology.NodeID) (*Result, error) {
	res := &Result{}
	for _, tgt := range targets {
		uPath := plane.ForwardTrace(tgt, unicastAddr)
		aPath := plane.ForwardTrace(tgt, anycastAddr)
		if !uPath.Delivered || !aPath.Delivered {
			continue // unmeasurable, like targets without Record-Route support
		}
		res.Compared++
		if aPath.Dest == intended {
			res.ToIntended++
			continue
		}
		d, err := classify(topo, tgt, uPath.Path, aPath.Path)
		if err != nil {
			return nil, err
		}
		res.Diverged = append(res.Diverged, d)
		if d.AnycastViaRE {
			res.ViaRE++
		}
		if d.RelUnicast != d.RelAnycast || relRank(d.RelAnycast) > 0 {
			res.RelationshipComparable++
			if d.ExplainedByRelationship {
				res.ByRelationship++
			}
		}
	}
	return res, nil
}

// classify finds the diverging AS and compares the divergent links.
func classify(topo *topology.Topology, tgt topology.NodeID, uPath, aPath []topology.NodeID) (Divergence, error) {
	d := Divergence{Target: tgt}
	// Find the last common node along the shared prefix of the two paths.
	n := len(uPath)
	if len(aPath) < n {
		n = len(aPath)
	}
	idx := -1
	for i := 0; i < n; i++ {
		if uPath[i] != aPath[i] {
			break
		}
		idx = i
	}
	if idx < 0 {
		return d, fmt.Errorf("trace: paths share no origin for target %d", tgt)
	}
	if idx+1 >= len(uPath) || idx+1 >= len(aPath) {
		// One path is a prefix of the other: the "divergence" is the
		// delivery point itself; classify against the last common node.
		d.Diverging = uPath[idx]
		return d, nil
	}
	d.Diverging = uPath[idx]
	d.NextUnicast = uPath[idx+1]
	d.NextAnycast = aPath[idx+1]
	relU, okU := topo.Adjacent(d.Diverging, d.NextUnicast)
	relA, okA := topo.Adjacent(d.Diverging, d.NextAnycast)
	if !okU || !okA {
		return d, fmt.Errorf("trace: divergence over non-adjacent hop at node %d", d.Diverging)
	}
	d.RelUnicast, d.RelAnycast = relU, relA
	d.AnycastViaRE = topo.Node(d.NextAnycast).Class.IsRE() && !topo.Node(d.NextUnicast).Class.IsRE()
	d.ExplainedByRelationship = relRank(relA) > relRank(relU)
	return d, nil
}
