package scenario

// Library returns the bundled named scenarios the cdnsim CLI exposes.
// Each exercises a fault regime the paper argues about but does not
// measure: flapping (with and without route-flap damping), a correlated
// regional outage, partial provider loss at the weakly connected sea1
// site, rolling maintenance drains, and a multi-failure cascade.
func Library() []*Scenario {
	return []*Scenario{
		{
			Name:        "flap",
			Description: "sea1 flaps 4 times at a 120 s period, no damping: every cycle re-converges",
			Events: []Event{
				{At: 10, Kind: KindFlap, Site: "sea1", Period: 120, Count: 4},
			},
		},
		{
			Name:        "flap-damped",
			Description: "the same flap with route-flap damping: downstream penalties suppress the churn and lengthen the tail",
			Damping:     true,
			Events: []Event{
				{At: 10, Kind: KindFlap, Site: "sea1", Period: 120, Count: 4},
			},
		},
		{
			Name:        "regional-outage",
			Description: "correlated failure of the mountain-west region: every site within 12 ms of slc (slc, sea1, sea2) fails together",
			Horizon:     400,
			Events: []Event{
				{At: 10, Kind: KindRegionalFail, Site: "slc", Radius: 12},
				{At: 190, Kind: KindRegionalRecover, Site: "slc", Radius: 12},
			},
		},
		{
			Name:        "provider-loss-sea1",
			Description: "sea1 loses its transit provider links but stays up: partial site failure the controller never sees",
			Horizon:     340,
			Events: []Event{
				{At: 10, Kind: KindPartialFail, Site: "sea1", Fraction: 1},
				{At: 160, Kind: KindPartialRestore, Site: "sea1", Fraction: 1},
			},
		},
		{
			Name:        "rolling-maintenance",
			Description: "each site is drained (30 s grace), held down, and recovered in turn, staggered 100 s apart",
			Events:      rollingMaintenance(),
		},
		{
			Name:        "cascade",
			Description: "compound incident: atl fails, bos follows, a tier-1 session resets, sea1 loses its provider, then everything heals",
			Horizon:     600,
			Events: []Event{
				{At: 10, Kind: KindFail, Site: "atl"},
				{At: 40, Kind: KindFail, Site: "bos"},
				{At: 70, Kind: KindSessionReset, A: "tier1-0", B: "tier1-1"},
				{At: 100, Kind: KindPartialFail, Site: "sea1", Fraction: 1},
				{At: 220, Kind: KindPartialRestore, Site: "sea1", Fraction: 1},
				{At: 280, Kind: KindRecover, Site: "atl"},
				{At: 340, Kind: KindRecover, Site: "bos"},
			},
		},
	}
}

// rollingMaintenance drains, holds, and recovers every default site in
// turn: drain at 10+100i with a 30 s grace, recover 60 s after the drain.
func rollingMaintenance() []Event {
	sites := []string{"ams", "ath", "bos", "atl", "sea1", "slc", "sea2", "msn"}
	out := make([]Event, 0, 2*len(sites))
	for i, code := range sites {
		base := 10 + 100*float64(i)
		out = append(out,
			Event{At: base, Kind: KindDrain, Site: code, DrainFor: 30},
			Event{At: base + 60, Kind: KindRecover, Site: code},
		)
	}
	return out
}

// ByName returns the bundled scenario with the given name, or nil.
func ByName(name string) *Scenario {
	for _, sc := range Library() {
		if sc.Name == name {
			return sc
		}
	}
	return nil
}
