package scenario

// Library returns the bundled named scenarios the cdnsim CLI exposes.
// Each exercises a fault regime the paper argues about but does not
// measure: flapping (with and without route-flap damping), a correlated
// regional outage, partial provider loss at the weakly connected sea1
// site, rolling maintenance drains, a multi-failure cascade, and three
// demand-model scenarios (flash crowd, cascading overload, capacity-aware
// drain) in the Sinha et al. load-management regime.
func Library() []*Scenario {
	return []*Scenario{
		{
			Name:        "flap",
			Description: "sea1 flaps 4 times at a 120 s period, no damping: every cycle re-converges",
			Events: []Event{
				{At: 10, Kind: KindFlap, Site: "sea1", Period: 120, Count: 4},
			},
		},
		{
			Name:        "flap-damped",
			Description: "the same flap with route-flap damping: downstream penalties suppress the churn and lengthen the tail",
			Damping:     true,
			Events: []Event{
				{At: 10, Kind: KindFlap, Site: "sea1", Period: 120, Count: 4},
			},
		},
		{
			Name:        "regional-outage",
			Description: "correlated failure of the mountain-west region: every site within 12 ms of slc (slc, sea1, sea2) fails together",
			Horizon:     400,
			Events: []Event{
				{At: 10, Kind: KindRegionalFail, Site: "slc", Radius: 12},
				{At: 190, Kind: KindRegionalRecover, Site: "slc", Radius: 12},
			},
		},
		{
			Name:        "provider-loss-sea1",
			Description: "sea1 loses its transit provider links but stays up: partial site failure the controller never sees",
			Horizon:     340,
			Events: []Event{
				{At: 10, Kind: KindPartialFail, Site: "sea1", Fraction: 1},
				{At: 160, Kind: KindPartialRestore, Site: "sea1", Fraction: 1},
			},
		},
		{
			Name:        "rolling-maintenance",
			Description: "each site is drained (30 s grace), held down, and recovered in turn, staggered 100 s apart",
			Events:      rollingMaintenance(),
		},
		{
			Name:        "flash-crowd",
			Description: "ams's current catchment demands 5x for 180 s: overload that no routing change caused and only load shifting or shedding can manage",
			Demand:      true,
			Horizon:     400,
			Events: []Event{
				{At: 10, Kind: KindFlashCrowd, Site: "ams", Fraction: 5, Period: 180},
			},
		},
		{
			Name:        "cascading-overload",
			Description: "the mountain-west region fails and survivors inherit its catchment AND its traffic: 5 of 8 sites absorb demand sized for 8, pushing them past the 1.25x headroom",
			Demand:      true,
			Horizon:     500,
			Events: []Event{
				{At: 10, Kind: KindRegionalFail, Site: "slc", Radius: 12},
				{At: 260, Kind: KindRegionalRecover, Site: "slc", Radius: 12},
			},
		},
		{
			Name:        "capacity-drain",
			Description: "slc is drained with a load-aware grace: forwarding stops when offered load falls under 1% of capacity (120 s bound), then the site recovers",
			Demand:      true,
			Horizon:     400,
			Events: []Event{
				{At: 10, Kind: KindCapacityDrain, Site: "slc", DrainFor: 120},
				{At: 250, Kind: KindRecover, Site: "slc"},
			},
		},
		{
			Name:        "cascade",
			Description: "compound incident: atl fails, bos follows, a tier-1 session resets, sea1 loses its provider, then everything heals",
			Horizon:     600,
			Events: []Event{
				{At: 10, Kind: KindFail, Site: "atl"},
				{At: 40, Kind: KindFail, Site: "bos"},
				{At: 70, Kind: KindSessionReset, A: "tier1-0", B: "tier1-1"},
				{At: 100, Kind: KindPartialFail, Site: "sea1", Fraction: 1},
				{At: 220, Kind: KindPartialRestore, Site: "sea1", Fraction: 1},
				{At: 280, Kind: KindRecover, Site: "atl"},
				{At: 340, Kind: KindRecover, Site: "bos"},
			},
		},
	}
}

// rollingMaintenance drains, holds, and recovers every default site in
// turn: drain at 10+100i with a 30 s grace, recover 60 s after the drain.
func rollingMaintenance() []Event {
	sites := []string{"ams", "ath", "bos", "atl", "sea1", "slc", "sea2", "msn"}
	out := make([]Event, 0, 2*len(sites))
	for i, code := range sites {
		base := 10 + 100*float64(i)
		out = append(out,
			Event{At: base, Kind: KindDrain, Site: code, DrainFor: 30},
			Event{At: base + 60, Kind: KindRecover, Site: code},
		)
	}
	return out
}

// ByName returns the bundled scenario with the given name, or nil.
func ByName(name string) *Scenario {
	for _, sc := range Library() {
		if sc.Name == name {
			return sc
		}
	}
	return nil
}
