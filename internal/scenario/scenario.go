// Package scenario implements a declarative fault-injection engine: typed
// event timelines (site crashes, BGP session resets, link failures,
// partial provider loss, flaps, maintenance drains, correlated regional
// outages) that run against any deployed CDN technique on the
// deterministic simulation kernel.
//
// The paper evaluates exactly one fault shape — a clean whole-site
// withdrawal (§5.2) — but its central risk argument (reactive-anycast's
// global reconfiguration on failure, route-flap damping tails, the
// pathological-site mechanism of Appendix C.1) only bites under richer
// fault patterns. A Scenario is a list of timestamped Events over that
// richer vocabulary; the engine binds events to a concrete world,
// schedules them on the virtual clock, probes targets throughout, and
// reports per-event reconnection, failover, and availability metrics.
//
// Scenarios are plain data: construct them in Go, or load them from YAML
// or JSON files (see ParseScenario). A library of named scenarios used by
// the cdnsim CLI is in library.go.
package scenario

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"bestofboth/internal/core"
	"bestofboth/internal/topology"
)

// Kind identifies a fault type on the timeline.
type Kind string

// The fault vocabulary.
const (
	// KindCrash takes a site down silently: no controller reaction until a
	// health monitor (Options.UseMonitor) detects it.
	KindCrash Kind = "crash"
	// KindFail is the paper's §5.2 failure: the site crashes and the
	// controller reacts after the CDN's DetectionDelay.
	KindFail Kind = "fail"
	// KindRecover returns a failed (or drained) site to service.
	KindRecover Kind = "recover"
	// KindDrain is a graceful maintenance drain: announcements are
	// withdrawn and DNS repointed immediately, but the site keeps serving
	// until DrainFor seconds later, when its data plane stops.
	KindDrain Kind = "drain"
	// KindLinkDown fails the link between nodes A and B: routes learned
	// over it are withdrawn and in-flight updates on it are lost.
	KindLinkDown Kind = "link-down"
	// KindLinkUp restores a failed link; both ends re-exchange full tables.
	KindLinkUp Kind = "link-up"
	// KindSessionReset bounces the BGP session between A and B without
	// taking the link down: flush plus immediate full re-advertisement.
	KindSessionReset Kind = "session-reset"
	// KindPartialFail fails a Fraction of Site's provider links (partial
	// site failure: the site stays up but loses part of its transit).
	KindPartialFail Kind = "partial-fail"
	// KindPartialRestore restores the links failed by KindPartialFail with
	// the same Site and Fraction.
	KindPartialRestore Kind = "partial-restore"
	// KindRegionalFail fails every CDN site whose metro lies within Radius
	// (one-way ms of the latency plane) of Site's metro — a correlated
	// regional outage (power, fiber cut).
	KindRegionalFail Kind = "regional-fail"
	// KindRegionalRecover recovers the sites a matching KindRegionalFail
	// took down.
	KindRegionalRecover Kind = "regional-recover"
	// KindFlap is a periodic crash/recover cycle: Count repetitions of
	// fail at At+i*Period, recover half a period later — the input that
	// route-flap damping (bgp.DampingConfig) exists to punish.
	KindFlap Kind = "flap"
	// KindFlashCrowd multiplies the demand of every target currently in
	// Site's catchment by Fraction for Period seconds, then restores the
	// original rates exactly. Requires a world with a demand model
	// (Scenario.Demand or an explicit demand config).
	KindFlashCrowd Kind = "flash-crowd"
	// KindCapacityDrain is a capacity-aware maintenance drain: like
	// KindDrain, but the site stops forwarding as soon as its offered load
	// falls below 1% of capacity, checked every 5 s, with DrainFor as the
	// hard upper bound on the grace period. Without a demand model it
	// degrades to a plain drain with a DrainFor grace.
	KindCapacityDrain Kind = "capacity-drain"
	// KindSwitchTechnique replaces the deployed technique live (Technique
	// names the target): every announcement is withdrawn and the new
	// technique's normal-operation set installed, with open failure
	// episodes replayed under the new technique.
	KindSwitchTechnique Kind = "switch-technique"
	// KindDemandScale multiplies every target's demand by Fraction,
	// permanently (integer thousandths arithmetic, deterministic). Requires
	// a demand model.
	KindDemandScale Kind = "demand-scale"
	// KindAnnouncePolicy re-originates Site's own prefix with Count AS-path
	// prepends (0 restores the plain announcement) — the routine
	// traffic-engineering knob.
	KindAnnouncePolicy Kind = "announce-policy"
)

// Event is one entry on a scenario timeline. Which fields are meaningful
// depends on Kind; Validate enforces the per-kind requirements.
type Event struct {
	// At is the event time in virtual seconds from scenario start.
	At float64 `json:"at"`
	// Kind selects the fault type.
	Kind Kind `json:"kind"`
	// Site names the affected CDN site (crash/fail/recover/drain/
	// partial-*/regional-*/flap).
	Site string `json:"site,omitempty"`
	// A and B name the two endpoints of a link/session fault. Site codes
	// resolve to the site's node; anything else must be a topology node
	// name (e.g. "transit-sea-weak").
	A string `json:"a,omitempty"`
	B string `json:"b,omitempty"`
	// Fraction is the share of provider links affected by partial-fail /
	// partial-restore, in (0,1]; at least one link is always chosen.
	Fraction float64 `json:"fraction,omitempty"`
	// Radius is the regional-failure metro radius in one-way milliseconds
	// on the latency plane.
	Radius float64 `json:"radius,omitempty"`
	// Period is the flap cycle length in seconds (fail, then recover half
	// a period later).
	Period float64 `json:"period,omitempty"`
	// Count is the number of flap cycles.
	Count int `json:"count,omitempty"`
	// DrainFor is the grace period of a drain: seconds the site keeps
	// forwarding after its announcements are withdrawn.
	DrainFor float64 `json:"drainFor,omitempty"`
	// Technique is the target technique name for switch-technique
	// (core.TechniqueByName vocabulary).
	Technique string `json:"technique,omitempty"`
}

// Scenario is a named fault-injection timeline.
type Scenario struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Damping requests route-flap damping (bgp.DefaultDamping) in worlds
	// built for this scenario. It is advisory: the world builder (e.g.
	// experiment.Runner) honors it; Run itself uses whatever network it is
	// handed.
	Damping bool `json:"damping,omitempty"`
	// Demand requests a demand model (traffic.Config defaults) in worlds
	// built for this scenario — required by flash-crowd events and
	// meaningful for any load-summary reporting. Advisory, like Damping.
	Demand bool `json:"demand,omitempty"`
	// Horizon is the probing horizon in virtual seconds from scenario
	// start. Zero means the last event time plus a 120 s tail.
	Horizon float64 `json:"horizon,omitempty"`
	Events  []Event `json:"events"`
}

func (e *Event) needsSite() bool {
	switch e.Kind {
	case KindCrash, KindFail, KindRecover, KindDrain,
		KindPartialFail, KindPartialRestore,
		KindRegionalFail, KindRegionalRecover, KindFlap,
		KindFlashCrowd, KindCapacityDrain, KindAnnouncePolicy:
		return true
	}
	return false
}

func (e *Event) needsLink() bool {
	switch e.Kind {
	case KindLinkDown, KindLinkUp, KindSessionReset:
		return true
	}
	return false
}

// Validate checks the scenario's structural well-formedness (field
// requirements per kind). Site and node names are resolved later, when
// the scenario is bound to a world.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if len(s.Events) == 0 {
		return fmt.Errorf("scenario %s: no events", s.Name)
	}
	if s.Horizon < 0 {
		return fmt.Errorf("scenario %s: negative horizon", s.Name)
	}
	for i := range s.Events {
		e := &s.Events[i]
		where := fmt.Sprintf("scenario %s: event %d (%s)", s.Name, i, e.Kind)
		if e.At < 0 {
			return fmt.Errorf("%s: negative time %g", where, e.At)
		}
		switch e.Kind {
		case KindCrash, KindFail, KindRecover, KindDrain:
		case KindLinkDown, KindLinkUp, KindSessionReset:
			if e.A == "" || e.B == "" {
				return fmt.Errorf("%s: needs both endpoints a and b", where)
			}
		case KindPartialFail, KindPartialRestore:
			if e.Fraction <= 0 || e.Fraction > 1 {
				return fmt.Errorf("%s: fraction %g outside (0,1]", where, e.Fraction)
			}
		case KindRegionalFail, KindRegionalRecover:
			if e.Radius <= 0 {
				return fmt.Errorf("%s: needs a positive radius", where)
			}
		case KindFlap:
			if e.Period <= 0 {
				return fmt.Errorf("%s: needs a positive period", where)
			}
			if e.Count <= 0 {
				return fmt.Errorf("%s: needs a positive count", where)
			}
		case KindFlashCrowd:
			if e.Fraction <= 0 {
				return fmt.Errorf("%s: needs a positive fraction (demand multiplier)", where)
			}
			if e.Period <= 0 {
				return fmt.Errorf("%s: needs a positive period (spike duration)", where)
			}
		case KindCapacityDrain:
			if e.DrainFor <= 0 {
				return fmt.Errorf("%s: needs a positive drainFor (grace bound)", where)
			}
		case KindSwitchTechnique:
			if e.Technique == "" {
				return fmt.Errorf("%s: needs a technique name", where)
			}
		case KindDemandScale:
			if e.Fraction <= 0 {
				return fmt.Errorf("%s: needs a positive fraction (demand multiplier)", where)
			}
		case KindAnnouncePolicy:
			if e.Count < 0 {
				return fmt.Errorf("%s: negative prepend count %d", where, e.Count)
			}
		default:
			return fmt.Errorf("scenario %s: event %d: unknown kind %q", s.Name, i, e.Kind)
		}
		if e.needsSite() && e.Site == "" {
			return fmt.Errorf("%s: needs a site", where)
		}
	}
	return nil
}

// EndTime returns the probing horizon: Horizon when set, otherwise the
// last action time (flaps expanded) plus a 120 s convergence tail.
func (s *Scenario) EndTime() float64 {
	if s.Horizon > 0 {
		return s.Horizon
	}
	last := 0.0
	for _, e := range s.Events {
		at := e.At
		switch e.Kind {
		case KindFlap:
			at += float64(e.Count-1)*e.Period + e.Period/2
		case KindFlashCrowd:
			at += e.Period
		case KindCapacityDrain:
			at += e.DrainFor
		}
		if at > last {
			last = at
		}
	}
	return last + 120
}

// action is one bound, scheduled fault: an event resolved against a
// concrete world, with flaps expanded into their fail/recover cycles.
type action struct {
	at    float64
	kind  Kind
	label string
	apply func(env *Env) error
}

// bind resolves every event against the world and expands composite
// events, returning the schedule sorted by time (stable: ties keep the
// timeline's order).
func (s *Scenario) bind(env *Env) ([]action, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var out []action
	for i := range s.Events {
		acts, err := bindEvent(env, &s.Events[i])
		if err != nil {
			return nil, fmt.Errorf("scenario %s: event %d: %w", s.Name, i, err)
		}
		out = append(out, acts...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].at < out[j].at })
	return out, nil
}

func bindEvent(env *Env, e *Event) ([]action, error) {
	switch e.Kind {
	case KindCrash:
		if err := env.checkSite(e.Site); err != nil {
			return nil, err
		}
		site := e.Site
		return []action{{e.At, e.Kind, "crash " + site, func(env *Env) error {
			_, err := env.CDN.CrashSite(site)
			return err
		}}}, nil
	case KindFail:
		if err := env.checkSite(e.Site); err != nil {
			return nil, err
		}
		site := e.Site
		return []action{{e.At, e.Kind, "fail " + site, func(env *Env) error {
			_, err := env.CDN.FailSite(site)
			return err
		}}}, nil
	case KindRecover:
		if err := env.checkSite(e.Site); err != nil {
			return nil, err
		}
		site := e.Site
		return []action{{e.At, e.Kind, "recover " + site, func(env *Env) error {
			_, err := env.CDN.RecoverSite(site)
			return err
		}}}, nil
	case KindDrain:
		if err := env.checkSite(e.Site); err != nil {
			return nil, err
		}
		site, grace := e.Site, e.DrainFor
		label := fmt.Sprintf("drain %s (%gs grace)", site, grace)
		return []action{{e.At, e.Kind, label, func(env *Env) error {
			if _, err := env.CDN.DrainSite(site); err != nil {
				return err
			}
			node := env.CDN.Site(site).Node
			env.Sim.After(grace, func() {
				// Stop forwarding only if the site was not recovered
				// during the grace period.
				if env.CDN.Failed(site) {
					env.Plane.SetDown(node, true)
				}
			})
			return nil
		}}}, nil
	case KindLinkDown, KindLinkUp, KindSessionReset:
		a, err := env.resolveNode(e.A)
		if err != nil {
			return nil, err
		}
		b, err := env.resolveNode(e.B)
		if err != nil {
			return nil, err
		}
		// Fail fast on nonexistent links at bind time.
		if _, ok := env.Topo.Adjacent(a, b); !ok {
			return nil, fmt.Errorf("no link between %q and %q", e.A, e.B)
		}
		label := fmt.Sprintf("%s %s<->%s", e.Kind, e.A, e.B)
		kind := e.Kind
		return []action{{e.At, kind, label, func(env *Env) error {
			switch kind {
			case KindLinkDown:
				return env.Net.SetLinkDown(a, b)
			case KindLinkUp:
				return env.Net.SetLinkUp(a, b)
			default:
				return env.Net.ResetSession(a, b)
			}
		}}}, nil
	case KindPartialFail, KindPartialRestore:
		links, err := env.providerLinks(e.Site, e.Fraction)
		if err != nil {
			return nil, err
		}
		down := e.Kind == KindPartialFail
		verb := "partial-restore"
		if down {
			verb = "partial-fail"
		}
		label := fmt.Sprintf("%s %s (%d provider links)", verb, e.Site, len(links))
		site := e.Site
		return []action{{e.At, e.Kind, label, func(env *Env) error {
			node := env.CDN.Site(site).Node
			for _, to := range links {
				var err error
				if down {
					err = env.Net.SetLinkDown(node, to)
				} else {
					err = env.Net.SetLinkUp(node, to)
				}
				if err != nil {
					return err
				}
			}
			return nil
		}}}, nil
	case KindRegionalFail, KindRegionalRecover:
		sites, err := env.regionalSites(e.Site, e.Radius)
		if err != nil {
			return nil, err
		}
		fail := e.Kind == KindRegionalFail
		verb := "regional-recover"
		if fail {
			verb = "regional-fail"
		}
		label := fmt.Sprintf("%s %s r=%g [%s]", verb, e.Site, e.Radius, joinSites(sites))
		return []action{{e.At, e.Kind, label, func(env *Env) error {
			for _, code := range sites {
				if fail {
					if env.CDN.Failed(code) {
						continue
					}
					if _, err := env.CDN.FailSite(code); err != nil {
						return err
					}
				} else {
					if !env.CDN.Failed(code) {
						continue
					}
					if _, err := env.CDN.RecoverSite(code); err != nil {
						return err
					}
				}
			}
			return nil
		}}}, nil
	case KindFlap:
		if err := env.checkSite(e.Site); err != nil {
			return nil, err
		}
		site := e.Site
		out := make([]action, 0, 2*e.Count)
		for i := 0; i < e.Count; i++ {
			cycle := e.At + float64(i)*e.Period
			n := i + 1
			out = append(out, action{cycle, KindFail,
				fmt.Sprintf("flap %s down (%d/%d)", site, n, e.Count),
				func(env *Env) error { _, err := env.CDN.FailSite(site); return err }})
			out = append(out, action{cycle + e.Period/2, KindRecover,
				fmt.Sprintf("flap %s up (%d/%d)", site, n, e.Count),
				func(env *Env) error { _, err := env.CDN.RecoverSite(site); return err }})
		}
		return out, nil
	case KindFlashCrowd:
		if err := env.checkSite(e.Site); err != nil {
			return nil, err
		}
		site, mult, dur := e.Site, e.Fraction, e.Period
		label := fmt.Sprintf("flash-crowd %s x%g (%gs)", site, mult, dur)
		return []action{{e.At, e.Kind, label, func(env *Env) error {
			m := env.CDN.Demand()
			if m == nil {
				return fmt.Errorf("flash-crowd needs a demand model (set Scenario.Demand or configure one)")
			}
			node := env.CDN.Site(site).Node
			// The affected population is whoever the site serves right now
			// (live catchment of the demand address), not a static list: a
			// crowd flocks to content, and the content's audience is wherever
			// the anycast/DNS layer currently lands it.
			var ids []topology.NodeID
			var orig []int64
			m.Each(func(id topology.NodeID, micro int64, _ int) {
				if got := env.CDN.DemandSiteOf(id); got != nil && got.Node == node {
					ids = append(ids, id)
					orig = append(orig, micro)
				}
			})
			// Integer scaling by mult expressed in thousandths keeps the
			// rates exact; the restore puts back the saved originals rather
			// than dividing (scaling down is lossy in integer space).
			num := int64(math.Round(mult * 1000))
			for i, id := range ids {
				r := orig[i]
				m.SetRate(id, r/1000*num+r%1000*num/1000)
			}
			env.CDN.RefreshLoad()
			env.Sim.After(dur, func() {
				for i, id := range ids {
					m.SetRate(id, orig[i])
				}
				env.CDN.RefreshLoad()
			})
			return nil
		}}}, nil
	case KindCapacityDrain:
		if err := env.checkSite(e.Site); err != nil {
			return nil, err
		}
		site, bound := e.Site, e.DrainFor
		label := fmt.Sprintf("capacity-drain %s (<=%gs grace)", site, bound)
		return []action{{e.At, e.Kind, label, func(env *Env) error {
			if _, err := env.CDN.DrainSite(site); err != nil {
				return err
			}
			node := env.CDN.Site(site).Node
			acct := env.CDN.Load()
			idx := -1
			if acct != nil {
				for i := 0; i < acct.NumSites(); i++ {
					if acct.SiteCode(i) == site {
						idx = i
						break
					}
				}
			}
			if idx < 0 {
				// No load accounting: plain drain with DrainFor as the grace.
				env.Sim.After(bound, func() {
					if env.CDN.Failed(site) {
						env.Plane.SetDown(node, true)
					}
				})
				return nil
			}
			deadline := env.Sim.Now() + bound
			// Poll the folded load every 5 s and cut forwarding as soon as
			// the drain has actually taken effect (offered load under 1% of
			// capacity), or at the deadline regardless.
			var poll func()
			poll = func() {
				if !env.CDN.Failed(site) {
					return // recovered mid-drain: keep serving
				}
				env.CDN.RefreshLoad()
				if env.Sim.Now() >= deadline || acct.Offered(idx)*100 <= acct.Capacity(idx) {
					env.Plane.SetDown(node, true)
					return
				}
				env.Sim.After(5, poll)
			}
			env.Sim.After(5, poll)
			return nil
		}}}, nil
	case KindSwitchTechnique:
		// Resolve the name at bind time so a bad technique fails the whole
		// scenario before any event runs.
		t, err := core.TechniqueByName(e.Technique)
		if err != nil {
			return nil, err
		}
		return []action{{e.At, e.Kind, "switch-technique " + e.Technique, func(env *Env) error {
			return env.CDN.SwitchTechnique(t)
		}}}, nil
	case KindDemandScale:
		mult := e.Fraction
		label := fmt.Sprintf("demand-scale x%g", mult)
		return []action{{e.At, e.Kind, label, func(env *Env) error {
			m := env.CDN.Demand()
			if m == nil {
				return fmt.Errorf("demand-scale needs a demand model (set Scenario.Demand or configure one)")
			}
			// Thousandths arithmetic, as flash crowds: exact and
			// platform-independent. Collect first — mutating under Each
			// would be order-fragile.
			num := int64(math.Round(mult * 1000))
			var ids []topology.NodeID
			m.Each(func(id topology.NodeID, _ int64, _ int) { ids = append(ids, id) })
			for _, id := range ids {
				m.ScaleRate(id, num, 1000)
			}
			env.CDN.RefreshLoad()
			return nil
		}}}, nil
	case KindAnnouncePolicy:
		if err := env.checkSite(e.Site); err != nil {
			return nil, err
		}
		site, prepends := e.Site, e.Count
		label := fmt.Sprintf("announce-policy %s prepend=%d", site, prepends)
		return []action{{e.At, e.Kind, label, func(env *Env) error {
			return env.CDN.SetAnnouncePolicy(site, prepends)
		}}}, nil
	}
	return nil, fmt.Errorf("unknown kind %q", e.Kind)
}

// ApplyEvents validates, binds, and applies events against the world
// immediately, in list order, ignoring At — the control plane's entry
// point for executing a ChangeSet's mutations at the present virtual
// instant. Composite events (flaps, drains with grace periods) still
// schedule their follow-up work on the kernel clock; the caller owns
// convergence afterwards. On error, earlier events in the list have
// already been applied.
func ApplyEvents(env *Env, events []Event) error {
	s := &Scenario{Name: "changeset", Events: events}
	if err := s.Validate(); err != nil {
		return err
	}
	for i := range events {
		acts, err := bindEvent(env, &events[i])
		if err != nil {
			return fmt.Errorf("scenario: event %d: %w", i, err)
		}
		for _, a := range acts {
			if err := a.apply(env); err != nil {
				return fmt.Errorf("scenario: %s: %w", a.label, err)
			}
		}
	}
	return nil
}

func joinSites(codes []string) string {
	out := ""
	for i, c := range codes {
		if i > 0 {
			out += ","
		}
		out += c
	}
	return out
}

func (env *Env) checkSite(code string) error {
	if env.CDN.Site(code) == nil {
		return fmt.Errorf("unknown site %q", code)
	}
	return nil
}

// resolveNode maps a name to a topology node: CDN site codes first, then
// topology node names.
func (env *Env) resolveNode(name string) (topology.NodeID, error) {
	if s := env.CDN.Site(name); s != nil {
		return s.Node, nil
	}
	if n := env.Topo.NodeByName(name); n != nil {
		return n.ID, nil
	}
	return 0, fmt.Errorf("unknown site or node %q", name)
}

// providerLinks returns the neighbor IDs of the first ceil(frac·n)
// provider adjacencies of the site's node, in ascending neighbor order —
// a deterministic "lose part of your transit" selection.
func (env *Env) providerLinks(site string, frac float64) ([]topology.NodeID, error) {
	s := env.CDN.Site(site)
	if s == nil {
		return nil, fmt.Errorf("unknown site %q", site)
	}
	var providers []topology.NodeID
	for _, adj := range env.Topo.Node(s.Node).Adj {
		if adj.Rel == topology.RelProvider {
			providers = append(providers, adj.To)
		}
	}
	if len(providers) == 0 {
		return nil, fmt.Errorf("site %q has no provider links", site)
	}
	slices.Sort(providers)
	k := int(math.Ceil(frac * float64(len(providers))))
	if k < 1 {
		k = 1
	}
	if k > len(providers) {
		k = len(providers)
	}
	return providers[:k], nil
}

// regionalSites returns the codes of all CDN sites whose metro center lies
// within radius of the center site's metro center, in site order. Metro
// centers (not scattered node positions) are used so the affected set is a
// property of the scenario, not of the topology seed.
func (env *Env) regionalSites(center string, radius float64) ([]string, error) {
	c := env.CDN.Site(center)
	if c == nil {
		return nil, fmt.Errorf("unknown site %q", center)
	}
	origin := nearestMetro(env.Topo.Node(c.Node).Loc)
	var out []string
	for _, s := range env.CDN.Sites() {
		m := nearestMetro(env.Topo.Node(s.Node).Loc)
		if origin.Loc.Dist(m.Loc) <= radius {
			out = append(out, s.Code)
		}
	}
	return out, nil
}

// nearestMetro snaps a scattered node position back to its metro. The
// generator scatters nodes at most ~1.4 ms from their metro center and
// metro centers are several ms apart, so the snap is unambiguous.
func nearestMetro(p topology.Point) topology.Metro {
	best := topology.Metros[0]
	bestD := math.Inf(1)
	for _, m := range topology.Metros {
		if d := p.Dist(m.Loc); d < bestD {
			best, bestD = m, d
		}
	}
	return best
}
