package scenario

import (
	"fmt"
	"net/netip"
	"sort"

	"bestofboth/internal/bgp"
	"bestofboth/internal/core"
	"bestofboth/internal/dataplane"
	"bestofboth/internal/netsim"
	"bestofboth/internal/stats"
	"bestofboth/internal/topology"
	"bestofboth/internal/traffic"
)

// Env is the concrete world a scenario runs against: an already deployed,
// converged CDN. experiment.RunScenarioMatrix builds these from world
// snapshots; tests wire them by hand.
type Env struct {
	Sim   *netsim.Sim
	Topo  *topology.Topology
	Net   *bgp.Network
	Plane *dataplane.Plane
	CDN   *core.CDN
}

// Group is one probed population: targets that were in Site's catchment at
// convergence, probed via ReplyTo (the steering address of the prefix
// under study) from the Prober node — the §5.2 Verfploeter arrangement.
type Group struct {
	// Site is the CDN site whose steering prefix is under study.
	Site string
	// Prober is the node probes are emitted from.
	Prober topology.NodeID
	// ReplyTo is the spoofed source address: targets reply to it, and
	// where the reply lands reveals the live catchment.
	ReplyTo netip.Addr
	// Targets are the probed client nodes.
	Targets []topology.NodeID
}

// Options configures a scenario run.
type Options struct {
	// ProbeInterval is the per-target ping cadence (default 1.5 s, §5.2).
	ProbeInterval float64
	// LossRate injects independent request/reply loss into probing.
	LossRate float64
	// UseMonitor runs the CDN's probing-based health monitor during the
	// scenario, so silent crashes (KindCrash) are detected with emergent
	// latency instead of never.
	UseMonitor bool
	// MonitorInterval/MonitorMisses configure the monitor (defaults
	// 0.5 s × 3).
	MonitorInterval float64
	MonitorMisses   int
}

func (o *Options) fillDefaults() {
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 1.5
	}
	if o.MonitorInterval <= 0 {
		o.MonitorInterval = 0.5
	}
	if o.MonitorMisses <= 0 {
		o.MonitorMisses = 3
	}
}

// DistSummary summarizes a sample distribution. Zero-valued when empty
// (N=0), keeping results JSON-encodable (no NaNs).
type DistSummary struct {
	N   int     `json:"n"`
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	Max float64 `json:"max"`
}

func summarize(samples []float64) DistSummary {
	if len(samples) == 0 {
		return DistSummary{}
	}
	cdf := stats.NewCDF(samples)
	return DistSummary{N: cdf.N(), P50: cdf.Percentile(50), P90: cdf.Percentile(90), Max: cdf.Max()}
}

// EventResult holds the per-event window metrics: the window runs from the
// event to the next event (or the horizon).
type EventResult struct {
	// At is the event time in seconds from scenario start.
	At float64 `json:"at"`
	// WindowEnd is the end of the event's metric window, seconds from
	// scenario start.
	WindowEnd float64 `json:"windowEnd"`
	Kind      string  `json:"kind"`
	Label     string  `json:"label"`
	// SitesDown is the number of failed sites immediately after the event.
	SitesDown int `json:"sitesDown"`
	// Sent and Answered count probes sent within the window and how many
	// of them were ever answered.
	Sent     int `json:"sent"`
	Answered int `json:"answered"`
	// Availability is Answered/Sent (1 when nothing was sent).
	Availability float64 `json:"availability"`
	// AffectedTargets is the number of targets that lost at least one
	// probe sent in the window; Lost counts those that never reconnected.
	AffectedTargets int `json:"affectedTargets"`
	Lost            int `json:"lost"`
	// Reconnection summarizes, over affected targets, the delay from the
	// event to the first reply at or after their first lost probe.
	Reconnection DistSummary `json:"reconnection"`
	// FailoverSites counts, per site code, where affected targets' last
	// reply of the window landed — the post-event catchment of the
	// disrupted population.
	FailoverSites map[string]int `json:"failoverSites,omitempty"`
}

// Detection records one health-monitor detection during the run.
type Detection struct {
	Site string  `json:"site"`
	At   float64 `json:"at"` // seconds from scenario start
}

// SiteLoad is one site's load trajectory over a scenario run, in rps.
type SiteLoad struct {
	Site        string  `json:"site"`
	CapacityRPS float64 `json:"capacityRPS"`
	// PeakOfferedRPS / PeakUtilization are the maxima across the run's load
	// samples; FinalOfferedRPS is the last sample's offered load.
	PeakOfferedRPS  float64 `json:"peakOfferedRPS"`
	PeakUtilization float64 `json:"peakUtilization"`
	FinalOfferedRPS float64 `json:"finalOfferedRPS"`
}

// LoadSummary reports the demand-model view of a scenario run: the load
// accountant is refolded every 5 s of virtual time, and peaks/integrals
// are taken over those samples (plus the folds the CDN's own lifecycle
// triggers).
type LoadSummary struct {
	// Samples is the number of 5 s sampler folds.
	Samples int `json:"samples"`
	// ServedIntegral/ShedIntegral sum served and shed rps across every fold
	// of the run — the served/shed rate time series integrated at the fold
	// cadence (dimensionally rps·folds, comparable across runs of one
	// scenario).
	ServedIntegral float64    `json:"servedIntegral"`
	ShedIntegral   float64    `json:"shedIntegral"`
	Sites          []SiteLoad `json:"sites"`
}

// Result is the outcome of one scenario run against one deployed world.
type Result struct {
	Scenario  string  `json:"scenario"`
	Technique string  `json:"technique"`
	Horizon   float64 `json:"horizon"`
	Groups    int     `json:"groups"`
	Targets   int     `json:"targets"`
	// Sent/Answered/Availability aggregate over the whole run, baseline
	// included.
	Sent         int     `json:"sent"`
	Answered     int     `json:"answered"`
	Availability float64 `json:"availability"`
	// BGPUpdates is the number of UPDATE messages the scenario itself
	// caused (delta over the run).
	BGPUpdates uint64 `json:"bgpUpdates"`
	// Detections lists health-monitor detections (empty without
	// Options.UseMonitor).
	Detections []Detection   `json:"detections,omitempty"`
	Events     []EventResult `json:"events"`
	// Load summarizes per-site offered/served/shed load over the run when
	// the world carries a demand model (nil otherwise).
	Load *LoadSummary `json:"load,omitempty"`
}

// Run executes the scenario against env: it schedules every bound event on
// the virtual clock, probes every group's targets at the probe cadence
// until the horizon, runs the simulation, and computes per-event metrics.
// The env is consumed — its clock advances and its world mutates; callers
// wanting a pristine world afterwards should run on a snapshot-restored
// copy.
func Run(env *Env, sc *Scenario, groups []Group, opts Options) (*Result, error) {
	opts.fillDefaults()
	actions, err := sc.bind(env)
	if err != nil {
		return nil, err
	}
	horizon := sc.EndTime()
	t0 := env.Sim.Now()
	msgs0 := env.Net.MessageCount()

	res := &Result{
		Scenario:  sc.Name,
		Technique: techName(env.CDN),
		Horizon:   horizon,
		Groups:    len(groups),
		Events:    make([]EventResult, len(actions)),
	}

	// Schedule the timeline. The wrapper records post-event state; a failed
	// apply aborts the run (reported after the simulation drains).
	var runErr error
	for i := range actions {
		a := &actions[i]
		slot := &res.Events[i]
		slot.At = a.at
		slot.Kind = string(a.kind)
		slot.Label = a.label
		env.Sim.At(t0+a.at, func() {
			if runErr != nil {
				return
			}
			if err := a.apply(env); err != nil {
				runErr = fmt.Errorf("scenario %s: %s at t=%g: %w", sc.Name, a.label, a.at, err)
				return
			}
			slot.SitesDown = len(env.CDN.Sites()) - len(env.CDN.HealthySites())
		})
	}

	var mon *core.Monitor
	if opts.UseMonitor {
		m, err := env.CDN.StartMonitor(opts.MonitorInterval, opts.MonitorMisses)
		if err != nil {
			return nil, err
		}
		m.OnDetect = func(code string, at netsim.Seconds) {
			res.Detections = append(res.Detections, Detection{Site: code, At: at - t0})
		}
		mon = m
	}

	probers := make([]*dataplane.Prober, len(groups))
	for i, g := range groups {
		pr := dataplane.NewProber(env.Plane, g.Prober, g.ReplyTo)
		pr.LossRate = opts.LossRate
		for _, tgt := range g.Targets {
			pr.PingEvery(tgt, opts.ProbeInterval, horizon)
		}
		probers[i] = pr
		res.Targets += len(g.Targets)
	}

	// Load sampler: refold the accountant every 5 s of virtual time so
	// per-site peaks and served/shed integrals track the fault timeline.
	// RefreshLoad is a pure read of converged FIBs and the sampler draws no
	// randomness, so scheduling it does not perturb the simulation.
	sampler := newLoadSampler(env, t0, horizon)

	// Drain: horizon plus slack for the last replies (well under 30 s).
	env.Sim.RunUntil(t0 + horizon + 30)
	if mon != nil {
		mon.Stop()
	}
	if runErr != nil {
		return nil, runErr
	}

	res.BGPUpdates = env.Net.MessageCount() - msgs0
	if sampler != nil {
		res.Load = sampler.summary()
	}
	analyze(env, res, actions, groups, probers, t0)
	return res, nil
}

// loadSampler tracks per-site load peaks across periodic refolds of the
// CDN's load accountant during a scenario run.
type loadSampler struct {
	env      *Env
	acct     *traffic.Accountant
	samples  int
	served0  int64
	shed0    int64
	peakOff  []int64
	peakUtil []float64
}

// newLoadSampler schedules 5 s load samples across [t0, t0+horizon] and
// returns nil when the world has no load accounting.
func newLoadSampler(env *Env, t0, horizon float64) *loadSampler {
	acct := env.CDN.Load()
	if acct == nil {
		return nil
	}
	ls := &loadSampler{
		env:      env,
		acct:     acct,
		peakOff:  make([]int64, acct.NumSites()),
		peakUtil: make([]float64, acct.NumSites()),
	}
	ls.served0, ls.shed0 = acct.Cumulative()
	for t := 0.0; t <= horizon; t += 5 {
		env.Sim.At(t0+t, ls.sample)
	}
	return ls
}

func (ls *loadSampler) sample() {
	ls.env.CDN.RefreshLoad()
	ls.samples++
	for i := range ls.peakOff {
		if off := ls.acct.Offered(i); off > ls.peakOff[i] {
			ls.peakOff[i] = off
		}
		if u := ls.acct.Utilization(i); u > ls.peakUtil[i] {
			ls.peakUtil[i] = u
		}
	}
}

func (ls *loadSampler) summary() *LoadSummary {
	served, shed := ls.acct.Cumulative()
	out := &LoadSummary{
		Samples:        ls.samples,
		ServedIntegral: float64(served-ls.served0) / traffic.Micro,
		ShedIntegral:   float64(shed-ls.shed0) / traffic.Micro,
		Sites:          make([]SiteLoad, 0, ls.acct.NumSites()),
	}
	for i := range ls.peakOff {
		out.Sites = append(out.Sites, SiteLoad{
			Site:            ls.acct.SiteCode(i),
			CapacityRPS:     float64(ls.acct.Capacity(i)) / traffic.Micro,
			PeakOfferedRPS:  float64(ls.peakOff[i]) / traffic.Micro,
			PeakUtilization: ls.peakUtil[i],
			FinalOfferedRPS: float64(ls.acct.Offered(i)) / traffic.Micro,
		})
	}
	return out
}

func techName(c *core.CDN) string {
	if t := c.Technique(); t != nil {
		return t.Name()
	}
	return ""
}

// analyze computes the per-event and whole-run metrics from the probe
// traces.
func analyze(env *Env, res *Result, actions []action, groups []Group, probers []*dataplane.Prober, t0 float64) {
	siteOf := make(map[topology.NodeID]string, len(env.CDN.Sites()))
	for _, s := range env.CDN.Sites() {
		siteOf[s.Node] = s.Code
	}

	// Per-prober indices: answered seqs, and captures per target in time
	// order.
	type trace struct {
		sent map[topology.NodeID][]dataplane.SentRecord
		caps map[topology.NodeID][]dataplane.CaptureEntry
		got  map[uint64]bool
	}
	traces := make([]trace, len(probers))
	for i, pr := range probers {
		tr := trace{
			sent: make(map[topology.NodeID][]dataplane.SentRecord),
			caps: pr.Capture.ByTarget(),
			got:  make(map[uint64]bool, pr.Capture.Len()),
		}
		for _, s := range pr.Sent {
			tr.sent[s.Target] = append(tr.sent[s.Target], s)
		}
		for _, e := range pr.Capture.Entries() {
			tr.got[e.Seq] = true
		}
		traces[i] = tr
		res.Sent += len(pr.Sent)
		res.Answered += pr.Capture.Len()
	}
	res.Availability = ratio(res.Answered, res.Sent)

	for i := range actions {
		ev := &res.Events[i]
		// Window: from this action to the next strictly later one.
		end := res.Horizon
		for j := i + 1; j < len(actions); j++ {
			if actions[j].at > actions[i].at {
				end = actions[j].at
				break
			}
		}
		ev.WindowEnd = end
		winStart, winEnd := t0+actions[i].at, t0+end

		var recon []float64
		failover := map[string]int{}
		for gi, g := range groups {
			tr := &traces[gi]
			for _, tgt := range g.Targets {
				sent := tr.sent[tgt]
				firstLost := -1.0
				for _, s := range sent {
					if s.Time < winStart || s.Time >= winEnd {
						continue
					}
					ev.Sent++
					if tr.got[s.Seq] {
						ev.Answered++
					} else if firstLost < 0 {
						firstLost = s.Time
					}
				}
				if firstLost < 0 {
					continue // unaffected by this event
				}
				ev.AffectedTargets++
				// Reconnection: first reply at or after the first loss.
				caps := tr.caps[tgt]
				ri := sort.Search(len(caps), func(k int) bool { return caps[k].Time >= firstLost })
				if ri == len(caps) {
					ev.Lost++
				} else {
					recon = append(recon, caps[ri].Time-winStart)
				}
				// Failover: where the last reply of the window landed.
				li := sort.Search(len(caps), func(k int) bool { return caps[k].Time >= winEnd })
				if li > 0 {
					last := caps[li-1]
					if last.Time >= winStart {
						failover[siteLabel(env, siteOf, last.Site)]++
					}
				}
			}
		}
		ev.Availability = ratio(ev.Answered, ev.Sent)
		ev.Reconnection = summarize(recon)
		if len(failover) > 0 {
			ev.FailoverSites = failover
		}
	}
}

func siteLabel(env *Env, siteOf map[topology.NodeID]string, node topology.NodeID) string {
	if code, ok := siteOf[node]; ok {
		return code
	}
	return env.Topo.Node(node).Name
}

func ratio(num, den int) float64 {
	if den == 0 {
		return 1
	}
	return float64(num) / float64(den)
}
