package scenario

import (
	"encoding/json"
	"reflect"
	"testing"
)

func TestParseYAMLScenario(t *testing.T) {
	src := `# a correlated regional outage
name: regional-outage
description: "mountain-west region fails together"  # inline comment
damping: false
horizon: 400
events:
  - at: 10
    kind: regional-fail
    site: slc
    radius: 12
  - at: 190
    kind: regional-recover
    site: slc
    radius: 12
`
	sc, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	want := &Scenario{
		Name:        "regional-outage",
		Description: "mountain-west region fails together",
		Horizon:     400,
		Events: []Event{
			{At: 10, Kind: KindRegionalFail, Site: "slc", Radius: 12},
			{At: 190, Kind: KindRegionalRecover, Site: "slc", Radius: 12},
		},
	}
	if !reflect.DeepEqual(sc, want) {
		t.Errorf("parsed scenario = %+v, want %+v", sc, want)
	}
}

func TestParseYAMLAllEventFields(t *testing.T) {
	src := `name: everything
damping: true
events:
  - at: 5
    kind: link-down
    a: tier1-0
    b: tier1-1
  - at: 10
    kind: partial-fail
    site: sea1
    fraction: 0.5
  - at: 15
    kind: flap
    site: sea1
    period: 60
    count: 3
  - at: 20
    kind: drain
    site: atl
    drainFor: 30
`
	sc, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Damping {
		t.Error("damping not parsed")
	}
	want := []Event{
		{At: 5, Kind: KindLinkDown, A: "tier1-0", B: "tier1-1"},
		{At: 10, Kind: KindPartialFail, Site: "sea1", Fraction: 0.5},
		{At: 15, Kind: KindFlap, Site: "sea1", Period: 60, Count: 3},
		{At: 20, Kind: KindDrain, Site: "atl", DrainFor: 30},
	}
	if !reflect.DeepEqual(sc.Events, want) {
		t.Errorf("events = %+v, want %+v", sc.Events, want)
	}
}

func TestParseJSONScenario(t *testing.T) {
	src := `{
  "name": "one-fail",
  "horizon": 100,
  "events": [{"at": 10, "kind": "fail", "site": "atl"}]
}`
	sc, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "one-fail" || len(sc.Events) != 1 || sc.Events[0].Kind != KindFail {
		t.Errorf("parsed JSON scenario = %+v", sc)
	}
}

func TestParseRejectsBadInput(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"empty", ""},
		{"tabs", "name: x\nevents:\n\t- at: 1\n"},
		{"unknown scenario field", "name: x\nbogus: 1\nevents:\n  - at: 1\n    kind: fail\n    site: atl\n"},
		{"unknown event field", "name: x\nevents:\n  - at: 1\n    kind: fail\n    site: atl\n    wat: 2\n"},
		{"duplicate key", "name: x\nname: y\nevents:\n  - at: 1\n    kind: fail\n    site: atl\n"},
		{"bad number", "name: x\nhorizon: soon\nevents:\n  - at: 1\n    kind: fail\n    site: atl\n"},
		{"events not a list", "name: x\nevents: 3\n"},
		{"stray indentation", "name: x\nevents:\n  - at: 1\n    kind: fail\n    site: atl\n      dangling: 1\n"},
		{"invalid after parse", "name: x\nevents:\n  - at: 1\n    kind: fail\n"}, // fail needs a site
		{"top level list", "- a\n- b\n"},
		{"bad json", "{\"name\": }"},
	}
	for _, tc := range cases {
		if _, err := Parse([]byte(tc.src)); err == nil {
			t.Errorf("%s: Parse accepted bad input", tc.name)
		}
	}
}

func TestParseRoundTripsLibraryJSON(t *testing.T) {
	// Every library scenario survives a JSON round-trip through Parse.
	for _, sc := range Library() {
		data, err := json.Marshal(sc)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		back, err := Parse(data)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if !reflect.DeepEqual(back, sc) {
			t.Errorf("%s: round-trip mismatch:\n got %+v\nwant %+v", sc.Name, back, sc)
		}
	}
}
