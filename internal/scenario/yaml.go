package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Scenario files are YAML or JSON. The YAML loader is a small hand-written
// parser (the repository carries no dependencies) covering the subset the
// scenario schema needs: nested maps and lists by indentation, "- " list
// items with inline first keys, scalars (strings, numbers, booleans,
// quoted strings), and "#" comments. Anchors, multi-line scalars, and flow
// collections are not supported.
//
//	name: regional-outage
//	description: correlated failure of the Salt Lake / Seattle region
//	damping: false
//	horizon: 400
//	events:
//	  - at: 10
//	    kind: regional-fail
//	    site: slc
//	    radius: 12
//	  - at: 190
//	    kind: regional-recover
//	    site: slc
//	    radius: 12

// LoadFile reads a scenario from a YAML or JSON file.
func LoadFile(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sc, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}

// Parse decodes a scenario from YAML or JSON bytes (JSON when the first
// non-space byte is '{').
func Parse(data []byte) (*Scenario, error) {
	trimmed := strings.TrimLeft(string(data), " \t\r\n")
	var v any
	if strings.HasPrefix(trimmed, "{") {
		if err := json.Unmarshal(data, &v); err != nil {
			return nil, fmt.Errorf("parsing JSON scenario: %w", err)
		}
	} else {
		parsed, err := parseYAML(string(data))
		if err != nil {
			return nil, err
		}
		v = parsed
	}
	sc, err := decodeScenario(v)
	if err != nil {
		return nil, err
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

// --- decoding ---------------------------------------------------------------

func decodeScenario(v any) (*Scenario, error) {
	m, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("scenario file: top level must be a mapping, got %T", v)
	}
	sc := &Scenario{}
	for k, val := range m {
		switch k {
		case "name":
			sc.Name = asString(val)
		case "description":
			sc.Description = asString(val)
		case "damping":
			b, err := asBool(val)
			if err != nil {
				return nil, fmt.Errorf("scenario field %q: %w", k, err)
			}
			sc.Damping = b
		case "demand":
			b, err := asBool(val)
			if err != nil {
				return nil, fmt.Errorf("scenario field %q: %w", k, err)
			}
			sc.Demand = b
		case "horizon":
			f, err := asFloat(val)
			if err != nil {
				return nil, fmt.Errorf("scenario field %q: %w", k, err)
			}
			sc.Horizon = f
		case "events":
			list, ok := val.([]any)
			if !ok {
				return nil, fmt.Errorf("scenario field \"events\": must be a list, got %T", val)
			}
			for i, item := range list {
				ev, err := decodeEvent(item)
				if err != nil {
					return nil, fmt.Errorf("event %d: %w", i, err)
				}
				sc.Events = append(sc.Events, ev)
			}
		default:
			return nil, fmt.Errorf("scenario file: unknown field %q", k)
		}
	}
	return sc, nil
}

func decodeEvent(v any) (Event, error) {
	var ev Event
	m, ok := v.(map[string]any)
	if !ok {
		return ev, fmt.Errorf("must be a mapping, got %T", v)
	}
	for k, val := range m {
		var err error
		switch k {
		case "at":
			ev.At, err = asFloat(val)
		case "kind":
			ev.Kind = Kind(asString(val))
		case "site":
			ev.Site = asString(val)
		case "a":
			ev.A = asString(val)
		case "b":
			ev.B = asString(val)
		case "fraction":
			ev.Fraction, err = asFloat(val)
		case "radius":
			ev.Radius, err = asFloat(val)
		case "period":
			ev.Period, err = asFloat(val)
		case "count":
			var f float64
			f, err = asFloat(val)
			ev.Count = int(f)
		case "drainFor", "drain-for":
			ev.DrainFor, err = asFloat(val)
		default:
			return ev, fmt.Errorf("unknown field %q", k)
		}
		if err != nil {
			return ev, fmt.Errorf("field %q: %w", k, err)
		}
	}
	return ev, nil
}

func asString(v any) string {
	if s, ok := v.(string); ok {
		return s
	}
	return fmt.Sprint(v)
}

func asFloat(v any) (float64, error) {
	switch x := v.(type) {
	case float64:
		return x, nil
	case int:
		return float64(x), nil
	case string:
		return strconv.ParseFloat(x, 64)
	}
	return 0, fmt.Errorf("expected a number, got %T", v)
}

func asBool(v any) (bool, error) {
	switch x := v.(type) {
	case bool:
		return x, nil
	case string:
		return strconv.ParseBool(x)
	}
	return false, fmt.Errorf("expected a boolean, got %T", v)
}

// --- YAML subset parser -----------------------------------------------------

type yamlLine struct {
	no     int // 1-based source line
	indent int
	text   string
}

type yamlParser struct {
	lines []yamlLine
	pos   int
}

func parseYAML(src string) (any, error) {
	p := &yamlParser{}
	for i, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || trimmed == "---" {
			continue
		}
		if strings.ContainsRune(line, '\t') {
			return nil, fmt.Errorf("yaml line %d: tabs are not allowed for indentation", i+1)
		}
		indent := len(line) - len(strings.TrimLeft(line, " "))
		p.lines = append(p.lines, yamlLine{no: i + 1, indent: indent, text: trimmed})
	}
	if len(p.lines) == 0 {
		return nil, fmt.Errorf("yaml: empty document")
	}
	v, err := p.parseBlock(p.lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.lines) {
		l := p.lines[p.pos]
		return nil, fmt.Errorf("yaml line %d: unexpected indentation", l.no)
	}
	return v, nil
}

// stripComment removes a trailing "#"-comment, respecting quoted strings.
func stripComment(line string) string {
	inSingle, inDouble := false, false
	for i, r := range line {
		switch r {
		case '\'':
			if !inDouble {
				inSingle = !inSingle
			}
		case '"':
			if !inSingle {
				inDouble = !inDouble
			}
		case '#':
			if !inSingle && !inDouble && (i == 0 || line[i-1] == ' ') {
				return line[:i]
			}
		}
	}
	return line
}

// parseBlock parses the run of lines at exactly the given indent as one
// value: a sequence if they start with "- ", a mapping otherwise.
func (p *yamlParser) parseBlock(indent int) (any, error) {
	if p.pos >= len(p.lines) {
		return nil, fmt.Errorf("yaml: unexpected end of document")
	}
	if strings.HasPrefix(p.lines[p.pos].text, "- ") || p.lines[p.pos].text == "-" {
		return p.parseSequence(indent)
	}
	return p.parseMapping(indent)
}

func (p *yamlParser) parseSequence(indent int) (any, error) {
	var out []any
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != indent || (l.text != "-" && !strings.HasPrefix(l.text, "- ")) {
			break
		}
		rest := strings.TrimSpace(strings.TrimPrefix(l.text, "-"))
		if rest == "" {
			// "-" alone: the item is the deeper-indented block below.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				return nil, fmt.Errorf("yaml line %d: empty sequence item", l.no)
			}
			item, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			out = append(out, item)
			continue
		}
		if key, val, isMap := splitKey(rest); isMap {
			// Inline first key of a mapping item: "- at: 10". Subsequent
			// keys sit at the indent of the inline key (indent + 2).
			m := map[string]any{}
			p.pos++
			if err := p.mapEntry(m, key, val, indent+2, l.no); err != nil {
				return nil, err
			}
			more, err := p.continueMapping(m, indent+2)
			if err != nil {
				return nil, err
			}
			out = append(out, more)
			continue
		}
		out = append(out, scalar(rest))
		p.pos++
	}
	return out, nil
}

func (p *yamlParser) parseMapping(indent int) (any, error) {
	m := map[string]any{}
	return p.continueMapping(m, indent)
}

// continueMapping consumes "key: value" lines at the given indent into m.
func (p *yamlParser) continueMapping(m map[string]any, indent int) (map[string]any, error) {
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != indent || strings.HasPrefix(l.text, "- ") || l.text == "-" {
			break
		}
		key, val, ok := splitKey(l.text)
		if !ok {
			return nil, fmt.Errorf("yaml line %d: expected \"key: value\", got %q", l.no, l.text)
		}
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("yaml line %d: duplicate key %q", l.no, key)
		}
		p.pos++
		if err := p.mapEntry(m, key, val, indent, l.no); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// mapEntry stores one parsed "key: value" into m, descending into a nested
// block when the value is empty. indent is the key's own indentation.
func (p *yamlParser) mapEntry(m map[string]any, key, val string, indent, lineNo int) error {
	if val != "" {
		m[key] = scalar(val)
		return nil
	}
	// Empty value: nested block (deeper indent), or sequence at the same
	// indent (YAML allows "- " items aligned with their key), or null.
	if p.pos < len(p.lines) {
		next := p.lines[p.pos]
		isSeq := next.text == "-" || strings.HasPrefix(next.text, "- ")
		if next.indent > indent || (next.indent == indent && isSeq) {
			v, err := p.parseBlock(next.indent)
			if err != nil {
				return err
			}
			m[key] = v
			return nil
		}
	}
	m[key] = nil
	return nil
}

// splitKey splits "key: value" ("key:" yields an empty value). Returns
// ok=false if the text is not a mapping entry.
func splitKey(text string) (key, val string, ok bool) {
	i := strings.Index(text, ":")
	if i < 0 {
		return "", "", false
	}
	key = strings.TrimSpace(text[:i])
	rest := text[i+1:]
	if key == "" || (rest != "" && !strings.HasPrefix(rest, " ")) {
		return "", "", false
	}
	return key, strings.TrimSpace(rest), true
}

// scalar converts a YAML scalar to bool, float64, or string.
func scalar(s string) any {
	if len(s) >= 2 {
		if (s[0] == '"' && s[len(s)-1] == '"') || (s[0] == '\'' && s[len(s)-1] == '\'') {
			return s[1 : len(s)-1]
		}
	}
	switch s {
	case "true", "True":
		return true
	case "false", "False":
		return false
	case "null", "~":
		return nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	return s
}
