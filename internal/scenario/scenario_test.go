package scenario

import (
	"testing"

	"bestofboth/internal/bgp"
	"bestofboth/internal/core"
	"bestofboth/internal/dataplane"
	"bestofboth/internal/netsim"
	"bestofboth/internal/topology"
)

// testEnv builds a small converged world with the given technique deployed.
func testEnv(t *testing.T, seed int64, tech core.Technique) *Env {
	t.Helper()
	topo, err := topology.Generate(topology.GenConfig{Seed: seed, NumStub: 80, NumEyeball: 60, NumUniversity: 16})
	if err != nil {
		t.Fatal(err)
	}
	sim := netsim.New(seed)
	net := bgp.New(sim, topo, bgp.Config{MRAI: 30, MRAIJitter: 0.2, ProcMin: 0.02, ProcMax: 0.3})
	plane := dataplane.New(net)
	cdn, err := core.New(net, plane, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := cdn.Deploy(tech); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	return &Env{Sim: sim, Topo: topo, Net: net, Plane: plane, CDN: cdn}
}

func TestValidateRejectsMalformedScenarios(t *testing.T) {
	cases := []struct {
		name string
		sc   Scenario
	}{
		{"missing name", Scenario{Events: []Event{{Kind: KindFail, Site: "atl"}}}},
		{"no events", Scenario{Name: "x"}},
		{"negative horizon", Scenario{Name: "x", Horizon: -1, Events: []Event{{Kind: KindFail, Site: "atl"}}}},
		{"negative time", Scenario{Name: "x", Events: []Event{{At: -5, Kind: KindFail, Site: "atl"}}}},
		{"unknown kind", Scenario{Name: "x", Events: []Event{{Kind: "melt", Site: "atl"}}}},
		{"fail without site", Scenario{Name: "x", Events: []Event{{Kind: KindFail}}}},
		{"link without endpoints", Scenario{Name: "x", Events: []Event{{Kind: KindLinkDown, A: "atl"}}}},
		{"fraction zero", Scenario{Name: "x", Events: []Event{{Kind: KindPartialFail, Site: "sea1"}}}},
		{"fraction above one", Scenario{Name: "x", Events: []Event{{Kind: KindPartialFail, Site: "sea1", Fraction: 1.5}}}},
		{"regional without radius", Scenario{Name: "x", Events: []Event{{Kind: KindRegionalFail, Site: "slc"}}}},
		{"flap without period", Scenario{Name: "x", Events: []Event{{Kind: KindFlap, Site: "sea1", Count: 3}}}},
		{"flap without count", Scenario{Name: "x", Events: []Event{{Kind: KindFlap, Site: "sea1", Period: 60}}}},
	}
	for _, tc := range cases {
		if err := tc.sc.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid scenario", tc.name)
		}
	}
	ok := Scenario{Name: "ok", Events: []Event{
		{At: 10, Kind: KindFail, Site: "atl"},
		{At: 20, Kind: KindLinkDown, A: "a", B: "b"},
		{At: 30, Kind: KindFlap, Site: "sea1", Period: 60, Count: 2},
	}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid scenario rejected: %v", err)
	}
}

func TestEndTime(t *testing.T) {
	withHorizon := Scenario{Name: "x", Horizon: 400, Events: []Event{{At: 10, Kind: KindFail, Site: "atl"}}}
	if got := withHorizon.EndTime(); got != 400 {
		t.Errorf("explicit horizon: got %g, want 400", got)
	}
	plain := Scenario{Name: "x", Events: []Event{
		{At: 10, Kind: KindFail, Site: "atl"},
		{At: 90, Kind: KindRecover, Site: "atl"},
	}}
	if got := plain.EndTime(); got != 210 {
		t.Errorf("last event + tail: got %g, want 210", got)
	}
	// A flap's last action is its final recover: 10 + 3*120 + 60 = 430.
	flap := Scenario{Name: "x", Events: []Event{{At: 10, Kind: KindFlap, Site: "sea1", Period: 120, Count: 4}}}
	if got := flap.EndTime(); got != 550 {
		t.Errorf("flap horizon: got %g, want 550", got)
	}
}

func TestBindExpandsFlapSorted(t *testing.T) {
	env := testEnv(t, 3, core.Unicast{})
	sc := &Scenario{Name: "x", Events: []Event{
		{At: 200, Kind: KindFail, Site: "atl"},
		{At: 10, Kind: KindFlap, Site: "sea1", Period: 100, Count: 3},
	}}
	acts, err := sc.bind(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != 7 {
		t.Fatalf("got %d actions, want 7 (3 flap cycles + 1 fail)", len(acts))
	}
	wantAt := []float64{10, 60, 110, 160, 200, 210, 260}
	for i, a := range acts {
		if a.at != wantAt[i] {
			t.Errorf("action %d at %g, want %g (%s)", i, a.at, wantAt[i], a.label)
		}
	}
	if acts[4].kind != KindFail || acts[4].label != "fail atl" {
		t.Errorf("action 4 = %s %q, want the interleaved fail", acts[4].kind, acts[4].label)
	}
}

func TestBindRejectsUnknownNames(t *testing.T) {
	env := testEnv(t, 3, core.Unicast{})
	cases := []Scenario{
		{Name: "x", Events: []Event{{Kind: KindFail, Site: "nowhere"}}},
		{Name: "x", Events: []Event{{Kind: KindLinkDown, A: "atl", B: "no-such-node"}}},
		// Both endpoints exist but are not adjacent.
		{Name: "x", Events: []Event{{Kind: KindLinkDown, A: "atl", B: "bos"}}},
		{Name: "x", Events: []Event{{Kind: KindRegionalFail, Site: "nowhere", Radius: 5}}},
	}
	for i := range cases {
		if _, err := cases[i].bind(env); err == nil {
			t.Errorf("case %d: bind accepted unknown names", i)
		}
	}
}

func TestRegionalSitesSnapToMetros(t *testing.T) {
	env := testEnv(t, 3, core.Unicast{})
	got, err := env.regionalSites("slc", 12)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"slc": true, "sea1": true, "sea2": true}
	if len(got) != len(want) {
		t.Fatalf("regional sites = %v, want slc+sea1+sea2", got)
	}
	for _, code := range got {
		if !want[code] {
			t.Fatalf("regional sites = %v, want slc+sea1+sea2", got)
		}
	}
	// A tiny radius only covers the center's own metro.
	solo, err := env.regionalSites("atl", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(solo) != 1 || solo[0] != "atl" {
		t.Fatalf("radius-1 regional sites = %v, want [atl]", solo)
	}
}

func TestProviderLinksSelection(t *testing.T) {
	env := testEnv(t, 3, core.Unicast{})
	// sea1 is the weakly connected site: exactly one transit provider.
	all, err := env.providerLinks("sea1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 {
		t.Fatalf("sea1 provider links = %d, want 1", len(all))
	}
	if name := env.Topo.Node(all[0]).Name; name != "transit-sea-weak" {
		t.Errorf("sea1 provider = %q, want transit-sea-weak", name)
	}
	// A small fraction still selects at least one link, and a larger site
	// loses only part of its transit.
	some, err := env.providerLinks("slc", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	full, err := env.providerLinks("slc", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(some) != 1 {
		t.Fatalf("fraction 0.01 selected %d links, want 1", len(some))
	}
	if len(full) < len(some) {
		t.Fatalf("fraction 1 selected %d links, fewer than fraction 0.01's %d", len(full), len(some))
	}
}

// buildGroup assembles the probed population for one site the way the
// experiment layer does: targets in the site's catchment via its steering
// address, probed from another site.
func buildGroup(t *testing.T, env *Env, code string, max int) Group {
	t.Helper()
	s := env.CDN.Site(code)
	steer := env.CDN.Technique().SteerAddr(env.CDN, s)
	g := Group{Site: code, ReplyTo: steer}
	for _, o := range env.CDN.Sites() {
		if o.Code != code {
			g.Prober = o.Node
			break
		}
	}
	for _, n := range env.Topo.Nodes {
		if !n.Prefix.IsValid() || (n.Class != topology.ClassStub && n.Class != topology.ClassEyeball) {
			continue
		}
		if got := env.CDN.CatchmentOf(n.ID, steer); got != nil && got.Node == s.Node {
			g.Targets = append(g.Targets, n.ID)
			if len(g.Targets) == max {
				break
			}
		}
	}
	if len(g.Targets) == 0 {
		t.Fatalf("no targets in %s's catchment", code)
	}
	return g
}

func TestRunFailRecoverEndToEnd(t *testing.T) {
	env := testEnv(t, 5, core.ReactiveAnycast{})
	g := buildGroup(t, env, "sea1", 8)
	sc := &Scenario{Name: "e2e", Horizon: 200, Events: []Event{
		{At: 20, Kind: KindFail, Site: "sea1"},
		{At: 120, Kind: KindRecover, Site: "sea1"},
	}}
	res, err := Run(env, sc, []Group{g}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenario != "e2e" || res.Technique != (core.ReactiveAnycast{}).Name() {
		t.Errorf("result identity = %q/%q", res.Scenario, res.Technique)
	}
	if res.Groups != 1 || res.Targets != len(g.Targets) {
		t.Errorf("groups/targets = %d/%d, want 1/%d", res.Groups, res.Targets, len(g.Targets))
	}
	if len(res.Events) != 2 {
		t.Fatalf("got %d event results, want 2", len(res.Events))
	}
	if res.Sent == 0 || res.Answered == 0 {
		t.Fatalf("no probing happened: sent=%d answered=%d", res.Sent, res.Answered)
	}
	if res.BGPUpdates == 0 {
		t.Error("fail+recover caused no BGP updates")
	}

	fail, rec := &res.Events[0], &res.Events[1]
	if fail.WindowEnd != 120 || rec.WindowEnd != 200 {
		t.Errorf("windows = [%g %g], want [120 200]", fail.WindowEnd, rec.WindowEnd)
	}
	if fail.SitesDown != 1 || rec.SitesDown != 0 {
		t.Errorf("sitesDown = [%d %d], want [1 0]", fail.SitesDown, rec.SitesDown)
	}
	// The failure must disrupt the targets and the technique must reconnect
	// them: some loss, everyone affected, nobody lost for good.
	if fail.AffectedTargets == 0 {
		t.Fatal("site failure affected no targets")
	}
	if fail.Availability >= 1 {
		t.Error("site failure lost no probes")
	}
	if fail.Lost != fail.AffectedTargets {
		// Reconnections happened; their delays must be recorded.
		if fail.Reconnection.N == 0 || fail.Reconnection.Max <= 0 {
			t.Errorf("reconnections missing: %+v", fail.Reconnection)
		}
	}
	// Failover attribution: affected targets' last reply of the window
	// landed somewhere, and not at the failed site.
	if len(fail.FailoverSites) == 0 {
		t.Error("no failover attribution recorded")
	}
	if n := fail.FailoverSites["sea1"]; n != 0 {
		t.Errorf("%d targets attributed to the failed site", n)
	}
	// After recovery everything is answered again near the tail.
	if rec.Availability == 0 {
		t.Error("no probes answered after recovery")
	}
}

func TestRunAbortsOnBadAction(t *testing.T) {
	env := testEnv(t, 5, core.Unicast{})
	// Recover of a never-failed site fails at apply time.
	sc := &Scenario{Name: "bad", Horizon: 60, Events: []Event{
		{At: 10, Kind: KindRecover, Site: "atl"},
	}}
	if _, err := Run(env, sc, nil, Options{}); err == nil {
		t.Fatal("Run accepted a recover of a healthy site")
	}
}

func TestRunCrashWithMonitor(t *testing.T) {
	env := testEnv(t, 5, core.ReactiveAnycast{})
	sc := &Scenario{Name: "crash", Horizon: 120, Events: []Event{
		{At: 20, Kind: KindCrash, Site: "sea1"},
	}}
	res, err := Run(env, sc, nil, Options{UseMonitor: true})
	if err != nil {
		t.Fatal(err)
	}
	var det *Detection
	for i := range res.Detections {
		if res.Detections[i].Site == "sea1" {
			det = &res.Detections[i]
		}
	}
	if det == nil {
		t.Fatalf("monitor never detected the crash: %+v", res.Detections)
	}
	if det.At <= 20 {
		t.Errorf("detection at %g, before the crash at 20", det.At)
	}
}

func TestLibraryScenariosBind(t *testing.T) {
	env := testEnv(t, 3, core.Unicast{})
	lib := Library()
	if len(lib) < 6 {
		t.Fatalf("library has %d scenarios, want at least 6", len(lib))
	}
	seen := map[string]bool{}
	for _, sc := range lib {
		if seen[sc.Name] {
			t.Errorf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		if err := sc.Validate(); err != nil {
			t.Errorf("library scenario %s invalid: %v", sc.Name, err)
		}
		if _, err := sc.bind(env); err != nil {
			t.Errorf("library scenario %s does not bind: %v", sc.Name, err)
		}
	}
	for _, name := range []string{"flap", "flap-damped", "regional-outage", "provider-loss-sea1", "rolling-maintenance", "cascade"} {
		if ByName(name) == nil {
			t.Errorf("ByName(%q) = nil", name)
		}
	}
	if ByName("no-such-scenario") != nil {
		t.Error("ByName of unknown scenario returned non-nil")
	}
	if !ByName("flap-damped").Damping {
		t.Error("flap-damped does not request damping")
	}
}
