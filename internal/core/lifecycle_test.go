package core

import (
	"errors"
	"testing"

	"bestofboth/internal/obs"
)

// TestTransitionSentinelErrors pins the unified lifecycle entry point's
// validation: every failure mode is a typed sentinel reachable through
// errors.Is, in the documented precedence (unknown site → not deployed →
// failed-state).
func TestTransitionSentinelErrors(t *testing.T) {
	w := newWorld(t, 61)

	// Before any deployment: unknown site outranks not-deployed.
	if _, err := w.cdn.FailSite("zzz"); !errors.Is(err, ErrUnknownSite) {
		t.Fatalf("unknown site: got %v, want ErrUnknownSite", err)
	}
	if _, err := w.cdn.FailSite("atl"); !errors.Is(err, ErrNotDeployed) {
		t.Fatalf("no technique: got %v, want ErrNotDeployed", err)
	}
	if _, err := w.cdn.RecoverSite("atl"); !errors.Is(err, ErrNotDeployed) {
		t.Fatalf("recover without technique: got %v, want ErrNotDeployed", err)
	}

	if err := w.cdn.Deploy(ReactiveAnycast{}); err != nil {
		t.Fatal(err)
	}
	w.converge()

	if _, err := w.cdn.RecoverSite("atl"); !errors.Is(err, ErrSiteNotFailed) {
		t.Fatalf("recover healthy site: got %v, want ErrSiteNotFailed", err)
	}
	if _, err := w.cdn.DrainSite("atl"); err != nil {
		t.Fatal(err)
	}
	for _, f := range []func(string) (SiteTransition, error){
		w.cdn.CrashSite, w.cdn.FailSite, w.cdn.DrainSite,
	} {
		if _, err := f("atl"); !errors.Is(err, ErrSiteFailed) {
			t.Fatalf("re-fail failed site: got %v, want ErrSiteFailed", err)
		}
	}
	if _, err := w.cdn.RecoverSite("atl"); err != nil {
		t.Fatal(err)
	}
}

// TestTransitionReturnsTypedResult pins the SiteTransition value every
// lifecycle wrapper returns.
func TestTransitionReturnsTypedResult(t *testing.T) {
	w := newWorld(t, 62)
	if err := w.cdn.Deploy(ReactiveAnycast{}); err != nil {
		t.Fatal(err)
	}
	w.converge()
	w.sim.RunUntil(w.sim.Now() + 100)

	site := w.cdn.Sites()[0]
	tr, err := w.cdn.DrainSite(site.Code)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Site != site.Code || tr.Node != site.Node || tr.Kind != TransitionDrain || tr.At != w.sim.Now() {
		t.Fatalf("drain transition = %+v", tr)
	}
	if tr.Kind.String() != "drain" {
		t.Fatalf("Kind.String() = %q", tr.Kind.String())
	}
	rec, err := w.cdn.RecoverSite(site.Code)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Kind != TransitionRecover || rec.Site != site.Code {
		t.Fatalf("recover transition = %+v", rec)
	}

	kinds := map[TransitionKind]string{
		TransitionCrash: "crash", TransitionFail: "fail",
		TransitionDrain: "drain", TransitionRecover: "recover",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Fatalf("TransitionKind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

// TestTransitionMetrics checks the controller's transition counters.
func TestTransitionMetrics(t *testing.T) {
	w := newWorld(t, 63)
	reg := obs.NewRegistry()
	w.cdn.Instrument(reg)
	if err := w.cdn.Deploy(ReactiveAnycast{}); err != nil {
		t.Fatal(err)
	}
	w.converge()

	site := w.cdn.Sites()[0].Code
	if _, err := w.cdn.FailSite(site); err != nil {
		t.Fatal(err)
	}
	w.converge()
	if _, err := w.cdn.RecoverSite(site); err != nil {
		t.Fatal(err)
	}
	// Failed validation must not count as a transition.
	if _, err := w.cdn.FailSite("zzz"); err == nil {
		t.Fatal("expected error")
	}

	if got := reg.Counter("cdn_site_transitions_total").Value(); got != 2 {
		t.Fatalf("cdn_site_transitions_total = %d, want 2", got)
	}
	if got := reg.Counter("cdn_site_transitions_fail_total").Value(); got != 1 {
		t.Fatalf("cdn_site_transitions_fail_total = %d, want 1", got)
	}
	if got := reg.Counter("cdn_site_transitions_recover_total").Value(); got != 1 {
		t.Fatalf("cdn_site_transitions_recover_total = %d, want 1", got)
	}
	if got := reg.Counter("cdn_failure_reactions_total").Value(); got != 1 {
		t.Fatalf("cdn_failure_reactions_total = %d, want 1", got)
	}
}
