package core

import (
	"net/netip"
	"testing"

	"bestofboth/internal/dns"
)

func TestMonitorDetectsCrash(t *testing.T) {
	w := newWorld(t, 20)
	if err := w.cdn.Deploy(ReactiveAnycast{}); err != nil {
		t.Fatal(err)
	}
	w.converge()

	var detectedCode string
	var detectedAt float64
	mon, err := w.cdn.StartMonitor(0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	mon.OnDetect = func(code string, at float64) {
		detectedCode, detectedAt = code, at
	}
	// Let a few healthy probe cycles pass: no detections.
	w.sim.RunFor(5)
	if mon.Detections != 0 {
		t.Fatalf("false positive: %d detections on healthy sites", mon.Detections)
	}

	crashAt := w.sim.Now()
	if _, err := w.cdn.CrashSite("atl"); err != nil {
		t.Fatal(err)
	}
	w.sim.RunFor(30)

	if mon.Detections != 1 || detectedCode != "atl" {
		t.Fatalf("detections = %d (%q), want 1 (atl)", mon.Detections, detectedCode)
	}
	lag := detectedAt - crashAt
	if lag <= 0 || lag > 5 {
		t.Fatalf("detection lag %.2fs outside (0, 5s] for 0.5s×3 probing", lag)
	}
	// The reaction ran: reactive announcements restored reachability.
	// (Stop the monitor so the event queue can drain; a running monitor
	// reschedules itself forever.)
	mon.Stop()
	w.sim.RunFor(300)
	client := w.someClient(t)
	after := w.cdn.CatchmentOf(client.ID, w.cdn.Site("atl").Addr)
	if after == nil || after.Code == "atl" {
		t.Fatalf("monitor-triggered reaction did not restore reachability: %+v", after)
	}
}

func TestMonitorStop(t *testing.T) {
	w := newWorld(t, 21)
	w.cdn.Deploy(Anycast{})
	w.converge()
	mon, err := w.cdn.StartMonitor(0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	mon.Stop()
	w.cdn.CrashSite("ams")
	w.sim.RunFor(20)
	if mon.Detections != 0 {
		t.Fatal("stopped monitor still detected")
	}
}

func TestMonitorRequiresDeployAndValidParams(t *testing.T) {
	w := newWorld(t, 22)
	if _, err := w.cdn.StartMonitor(0.5, 3); err == nil {
		t.Fatal("monitor started without technique")
	}
	w.cdn.Deploy(Anycast{})
	if _, err := w.cdn.StartMonitor(0, 3); err == nil {
		t.Fatal("zero interval accepted")
	}
	if _, err := w.cdn.StartMonitor(1, 0); err == nil {
		t.Fatal("zero misses accepted")
	}
}

func TestReactToFailureIdempotentAndGuarded(t *testing.T) {
	w := newWorld(t, 23)
	w.cdn.Deploy(ReactiveAnycast{})
	w.converge()
	if err := w.cdn.ReactToFailure("ams"); err == nil {
		t.Fatal("reaction on healthy site accepted")
	}
	if err := w.cdn.ReactToFailure("zzz"); err == nil {
		t.Fatal("reaction on unknown site accepted")
	}
	w.cdn.CrashSite("ams")
	if err := w.cdn.ReactToFailure("ams"); err != nil {
		t.Fatal(err)
	}
	msgs := w.net.MessageCount()
	w.converge()
	after := w.net.MessageCount()
	// Second reaction is a no-op: no new announcements.
	if err := w.cdn.ReactToFailure("ams"); err != nil {
		t.Fatal(err)
	}
	w.converge()
	if w.net.MessageCount() != after {
		t.Fatalf("duplicate reaction generated traffic (%d -> %d, initial %d)",
			after, w.net.MessageCount(), msgs)
	}
}

func TestEndUserMappingAnswersPerClient(t *testing.T) {
	w := newWorld(t, 24)
	w.cdn.Deploy(Unicast{})
	w.converge()
	w.cdn.EnableEndUserMapping()

	resolver := dns.NewResolver(w.cdn.Authoritative())
	// Two clients in different regions should (typically) map to
	// different sites; at minimum both get valid steering addresses of
	// healthy sites they can reach.
	var clients []netip.Addr
	for _, n := range w.topo.Nodes {
		if n.Prefix.IsValid() {
			clients = append(clients, n.Prefix.Addr().Next())
		}
		if len(clients) >= 40 {
			break
		}
	}
	distinct := map[netip.Addr]bool{}
	for _, caddr := range clients {
		addrs, _, err := resolver.ResolveFor(0, "www.cdn.example", caddr)
		if err != nil {
			t.Fatalf("client %v: %v", caddr, err)
		}
		if len(addrs) != 1 {
			t.Fatalf("client %v got %d answers", caddr, len(addrs))
		}
		distinct[addrs[0]] = true
		if !SuperPrefix.Contains(addrs[0]) {
			t.Fatalf("answer %v outside the site prefix plan", addrs[0])
		}
	}
	if len(distinct) < 2 {
		t.Fatalf("end-user mapping returned a single site for all %d clients", len(clients))
	}
	if w.cdn.Authoritative().ECSAnswered == 0 {
		t.Fatal("no ECS-answered queries recorded")
	}
}

func TestEndUserMappingAvoidsFailedSite(t *testing.T) {
	w := newWorld(t, 25)
	w.cdn.Deploy(Unicast{})
	w.converge()
	w.cdn.EnableEndUserMapping()
	resolver := dns.NewResolver(w.cdn.Authoritative())

	// Find a client mapped to some site, then fail that site and confirm
	// the mapper immediately moves the client.
	client := w.someClient(t)
	caddr := client.Prefix.Addr().Next()
	addrs, _, err := resolver.ResolveFor(0, "www.cdn.example", caddr)
	if err != nil {
		t.Fatal(err)
	}
	var mapped *Site
	for _, s := range w.cdn.Sites() {
		if s.Addr == addrs[0] {
			mapped = s
		}
	}
	if mapped == nil {
		t.Fatalf("answer %v is not a site address", addrs[0])
	}
	w.cdn.FailSite(mapped.Code)
	w.converge()
	resolver.Flush()
	addrs2, _, err := resolver.ResolveFor(w.sim.Now(), "www.cdn.example", caddr)
	if err != nil {
		t.Fatal(err)
	}
	if addrs2[0] == mapped.Addr {
		t.Fatalf("mapper still hands out failed site %s", mapped.Code)
	}
}

func TestBestSiteForPrefersSteerableNearest(t *testing.T) {
	w := newWorld(t, 26)
	w.cdn.Deploy(Unicast{})
	w.converge()
	client := w.someClient(t)
	best := w.cdn.BestSiteFor(client.ID)
	if best == nil {
		t.Fatal("no best site")
	}
	// Under unicast every site is steerable, so best must be the latency
	// minimum across all sites.
	for _, s := range w.cdn.Sites() {
		if w.plane.StaticDelay(s.Node, client.ID) < w.plane.StaticDelay(best.Node, client.ID)-1e-12 {
			t.Fatalf("site %s is closer than chosen %s", s.Code, best.Code)
		}
	}
}
