package core

import (
	"net/netip"
	"testing"

	"bestofboth/internal/bgp"
	"bestofboth/internal/dataplane"
	"bestofboth/internal/dns"
	"bestofboth/internal/netsim"
	"bestofboth/internal/topology"
)

type world struct {
	sim   *netsim.Sim
	topo  *topology.Topology
	net   *bgp.Network
	plane *dataplane.Plane
	cdn   *CDN
}

func newWorld(t *testing.T, seed int64) *world {
	t.Helper()
	topo, err := topology.Generate(topology.GenConfig{Seed: seed, NumStub: 80, NumEyeball: 60, NumUniversity: 16})
	if err != nil {
		t.Fatal(err)
	}
	sim := netsim.New(seed)
	net := bgp.New(sim, topo, bgp.Config{MRAI: 30, MRAIJitter: 0.2, ProcMin: 0.02, ProcMax: 0.3})
	plane := dataplane.New(net)
	cdn, err := New(net, plane, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return &world{sim: sim, topo: topo, net: net, plane: plane, cdn: cdn}
}

// converge drains all pending control-plane events.
func (w *world) converge() { w.sim.Run() }

// someClient returns a prefix-bearing node that is reachable.
func (w *world) someClient(t *testing.T) *topology.Node {
	t.Helper()
	for _, n := range w.topo.Nodes {
		if n.Class == topology.ClassStub && n.Prefix.IsValid() {
			return n
		}
	}
	t.Fatal("no client node found")
	return nil
}

func TestNewCDNSites(t *testing.T) {
	w := newWorld(t, 1)
	sites := w.cdn.Sites()
	if len(sites) != 8 {
		t.Fatalf("got %d sites", len(sites))
	}
	seenPrefix := map[netip.Prefix]bool{}
	seenCode := map[string]bool{}
	for _, s := range sites {
		if seenPrefix[s.Prefix] {
			t.Fatalf("duplicate site prefix %v", s.Prefix)
		}
		seenPrefix[s.Prefix] = true
		if seenCode[s.Code] {
			t.Fatalf("duplicate site code %v", s.Code)
		}
		seenCode[s.Code] = true
		if !SuperPrefix.Contains(s.Addr) {
			t.Fatalf("site addr %v outside superprefix %v", s.Addr, SuperPrefix)
		}
		if !s.Prefix.Contains(s.Addr) {
			t.Fatalf("site addr %v outside its prefix %v", s.Addr, s.Prefix)
		}
		if w.cdn.Site(s.Code) != s {
			t.Fatal("Site lookup broken")
		}
	}
	if w.cdn.Site("nope") != nil {
		t.Fatal("unknown site lookup returned non-nil")
	}
}

func TestSitePrefixPlan(t *testing.T) {
	for i := 0; i < 8; i++ {
		p := SitePrefix(i)
		if !SuperPrefix.Contains(p.Addr()) || p.Bits() != 24 {
			t.Fatalf("SitePrefix(%d) = %v not a /24 under %v", i, p, SuperPrefix)
		}
	}
	if SitePrefix(0) == SitePrefix(1) {
		t.Fatal("site prefixes collide")
	}
	a := ServiceAddr(SitePrefix(3))
	if a != netip.MustParseAddr("184.164.243.10") {
		t.Fatalf("ServiceAddr = %v", a)
	}
}

func TestUnicastSteersEveryClientToEverySite(t *testing.T) {
	w := newWorld(t, 2)
	if err := w.cdn.Deploy(Unicast{}); err != nil {
		t.Fatal(err)
	}
	w.converge()
	client := w.someClient(t)
	for _, s := range w.cdn.Sites() {
		if !w.cdn.CanSteer(client.ID, s) {
			t.Fatalf("unicast cannot steer client to %s", s.Code)
		}
	}
}

func TestDeployTwiceFails(t *testing.T) {
	w := newWorld(t, 1)
	if err := w.cdn.Deploy(Unicast{}); err != nil {
		t.Fatal(err)
	}
	if err := w.cdn.Deploy(Anycast{}); err == nil {
		t.Fatal("second Deploy accepted")
	}
}

func TestAnycastSingleCatchmentPerClient(t *testing.T) {
	w := newWorld(t, 3)
	if err := w.cdn.Deploy(Anycast{}); err != nil {
		t.Fatal(err)
	}
	w.converge()
	counts := map[string]int{}
	for _, n := range w.topo.Nodes {
		if !n.Prefix.IsValid() {
			continue
		}
		s := w.cdn.CatchmentOf(n.ID, AnycastServiceAddr)
		if s == nil {
			t.Fatalf("client %s cannot reach the anycast prefix", n.Name)
		}
		counts[s.Code]++
	}
	if len(counts) < 3 {
		t.Fatalf("anycast catchments collapsed to %d sites: %v", len(counts), counts)
	}
	// SteerAddr is the shared address for every site.
	for _, s := range w.cdn.Sites() {
		if (Anycast{}).SteerAddr(w.cdn, s) != AnycastServiceAddr {
			t.Fatal("anycast SteerAddr differs per site")
		}
	}
}

func TestUnicastFailureBlackholesUntilDNS(t *testing.T) {
	w := newWorld(t, 4)
	w.cdn.Deploy(Unicast{})
	w.converge()
	client := w.someClient(t)
	failed := w.cdn.Sites()[0]

	if _, err := w.cdn.FailSite(failed.Code); err != nil {
		t.Fatal(err)
	}
	w.converge()
	// Data plane: the failed site's address is unreachable (no other site
	// announces it).
	if s := w.cdn.CatchmentOf(client.ID, failed.Addr); s != nil {
		t.Fatalf("failed unicast address still reaches %s", s.Code)
	}
	// DNS was repointed at a healthy site.
	auth := w.cdn.Authoritative()
	resp := authQueryA(t, auth, failed.Code+".cdn.example.")
	if len(resp) != 1 || resp[0] == failed.Addr {
		t.Fatalf("DNS for failed site = %v", resp)
	}
	if w.cdn.Failed(failed.Code) != true {
		t.Fatal("Failed() not reporting")
	}
	if got := len(w.cdn.HealthySites()); got != 7 {
		t.Fatalf("HealthySites = %d", got)
	}
}

func TestFailSiteErrors(t *testing.T) {
	w := newWorld(t, 1)
	if _, err := w.cdn.FailSite("ams"); err == nil {
		t.Fatal("FailSite before Deploy accepted")
	}
	w.cdn.Deploy(Unicast{})
	if _, err := w.cdn.FailSite("zzz"); err == nil {
		t.Fatal("unknown site accepted")
	}
	if _, err := w.cdn.FailSite("ams"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.cdn.FailSite("ams"); err == nil {
		t.Fatal("double failure accepted")
	}
	if _, err := w.cdn.RecoverSite("bos"); err == nil {
		t.Fatal("recovering healthy site accepted")
	}
	if _, err := w.cdn.RecoverSite("zzz"); err == nil {
		t.Fatal("recovering unknown site accepted")
	}
}

func TestReactiveAnycastRestoresReachability(t *testing.T) {
	w := newWorld(t, 5)
	w.cdn.Deploy(ReactiveAnycast{})
	w.converge()
	client := w.someClient(t)
	failed := w.cdn.Sites()[2]

	before := w.cdn.CatchmentOf(client.ID, failed.Addr)
	if before == nil || before.Node != failed.Node {
		t.Fatalf("before failure client routed to %+v", before)
	}
	w.cdn.FailSite(failed.Code)
	w.converge()
	after := w.cdn.CatchmentOf(client.ID, failed.Addr)
	if after == nil {
		t.Fatal("reactive-anycast left the failed prefix unreachable")
	}
	if after.Node == failed.Node {
		t.Fatal("traffic still reaches the failed site")
	}
}

func TestProactiveSuperprefixRestoresReachability(t *testing.T) {
	w := newWorld(t, 6)
	w.cdn.Deploy(ProactiveSuperprefix{})
	w.converge()
	client := w.someClient(t)
	failed := w.cdn.Sites()[1]
	w.cdn.FailSite(failed.Code)
	w.converge()
	after := w.cdn.CatchmentOf(client.ID, failed.Addr)
	if after == nil || after.Node == failed.Node {
		t.Fatalf("superprefix fallback failed: %+v", after)
	}
}

func TestProactivePrependingControlAndFailover(t *testing.T) {
	w := newWorld(t, 7)
	w.cdn.Deploy(ProactivePrepending{Prepends: 3})
	w.converge()

	// Control: across a sample of clients, steering must work for a
	// meaningful fraction (anycast alone would not steer them all).
	clients := 0
	steerable := 0
	for _, n := range w.topo.Nodes {
		if !n.Prefix.IsValid() || clients >= 60 {
			continue
		}
		clients++
		if w.cdn.CanSteer(n.ID, w.cdn.Site("ath")) {
			steerable++
		}
	}
	if steerable == 0 {
		t.Fatal("prepending steers no clients at all")
	}

	failed := w.cdn.Site("ath")
	client := w.someClient(t)
	w.cdn.FailSite(failed.Code)
	w.converge()
	after := w.cdn.CatchmentOf(client.ID, failed.Addr)
	if after == nil || after.Node == failed.Node {
		t.Fatalf("prepending failover broken: %+v", after)
	}
}

func TestScopedPrependingRestrictsExports(t *testing.T) {
	w := newWorld(t, 8)
	w.cdn.Deploy(ProactivePrepending{Prepends: 3, Scoped: true})
	w.converge()
	// Every backup announcement must have gone only to neighbors that also
	// connect to the owner site. Verify via the BGP layer: any AS holding a
	// prepended route directly from a backup site must also neighbor the
	// owner site.
	topo := w.topo
	for _, owner := range w.cdn.Sites() {
		ownerASNs := map[topology.ASN]bool{}
		for _, adj := range topo.Node(owner.Node).Adj {
			ownerASNs[topo.Node(adj.To).ASN] = true
		}
		for _, backup := range w.cdn.Sites() {
			if backup.Node == owner.Node {
				continue
			}
			for _, adj := range topo.Node(backup.Node).Adj {
				nb := w.net.Speaker(adj.To)
				for _, r := range nb.AdjIn(owner.Prefix) {
					if r == nil || r.OriginNode != backup.Node {
						continue
					}
					if !ownerASNs[topo.Node(adj.To).ASN] {
						t.Fatalf("scoped prepending leaked %s's prefix from %s to non-shared neighbor %s",
							owner.Code, backup.Code, topo.Node(adj.To).Name)
					}
				}
			}
		}
	}
}

func TestCombinedFailover(t *testing.T) {
	w := newWorld(t, 9)
	w.cdn.Deploy(Combined{})
	w.converge()
	client := w.someClient(t)
	failed := w.cdn.Sites()[3]
	w.cdn.FailSite(failed.Code)
	w.converge()
	after := w.cdn.CatchmentOf(client.ID, failed.Addr)
	if after == nil || after.Node == failed.Node {
		t.Fatalf("combined failover broken: %+v", after)
	}
}

func TestRecoverSiteRestoresSteering(t *testing.T) {
	for _, tech := range AllTechniques() {
		w := newWorld(t, 10)
		if err := w.cdn.Deploy(tech); err != nil {
			t.Fatalf("%s: %v", tech.Name(), err)
		}
		w.converge()
		client := w.someClient(t)
		site := w.cdn.Sites()[0]
		w.cdn.FailSite(site.Code)
		w.converge()
		if _, err := w.cdn.RecoverSite(site.Code); err != nil {
			t.Fatalf("%s: recover: %v", tech.Name(), err)
		}
		w.converge()
		got := w.cdn.CatchmentOf(client.ID, tech.SteerAddr(w.cdn, site))
		if got == nil {
			t.Fatalf("%s: site unreachable after recovery", tech.Name())
		}
		// For unicast-addressed techniques the client must land exactly on
		// the recovered site again.
		if tech.SteerAddr(w.cdn, site) == site.Addr && got.Node != site.Node {
			t.Fatalf("%s: steering after recovery lands on %s", tech.Name(), got.Code)
		}
		if w.cdn.Failed(site.Code) {
			t.Fatalf("%s: site still marked failed", tech.Name())
		}
	}
}

func TestTradeoffsMatchTable2(t *testing.T) {
	cases := map[string]Tradeoffs{
		"proactive-prepending":  {Medium, High, Low},
		"reactive-anycast":      {High, High, High},
		"proactive-superprefix": {High, Medium, Low},
		"anycast":               {Low, High, Low},
		"unicast":               {High, Low, Low},
	}
	for _, tech := range AllTechniques() {
		want, ok := cases[tech.Name()]
		if !ok {
			continue
		}
		if got := tech.Tradeoffs(); got != want {
			t.Fatalf("%s tradeoffs = %+v, want %+v", tech.Name(), got, want)
		}
	}
}

func TestDNSDeployPublishesSiteNames(t *testing.T) {
	w := newWorld(t, 11)
	w.cdn.Deploy(Unicast{})
	for _, s := range w.cdn.Sites() {
		addrs := authQueryA(t, w.cdn.Authoritative(), s.Code+".cdn.example.")
		if len(addrs) != 1 || addrs[0] != s.Addr {
			t.Fatalf("DNS for %s = %v, want %v", s.Code, addrs, s.Addr)
		}
	}
	if got := authQueryA(t, w.cdn.Authoritative(), "www.cdn.example."); len(got) != 1 {
		t.Fatalf("www record = %v", got)
	}
}

// authQueryA resolves an A record directly against the authoritative,
// round-tripping through the wire codec.
func authQueryA(t *testing.T, auth *dns.Authoritative, name string) []netip.Addr {
	t.Helper()
	q := &dns.Message{
		Header:   dns.Header{ID: 1},
		Question: []dns.Question{{Name: name, Type: dns.TypeA}},
	}
	wire, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	out, err := auth.HandleQuery(wire)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := dns.Decode(out)
	if err != nil {
		t.Fatal(err)
	}
	var addrs []netip.Addr
	for _, rr := range resp.Answer {
		if rr.Type == dns.TypeA {
			addrs = append(addrs, rr.A)
		}
	}
	return addrs
}
