// Package core implements the paper's contribution: CDN client-to-site
// routing techniques that combine unicast's traffic control with anycast's
// fast failover, together with the CDN controller that orchestrates
// announcements, DNS records, failure detection, and reactive
// reconfiguration.
//
// Six techniques are provided (§2, §3, §4 and Figure 1):
//
//	unicast               per-site prefix + DNS redirection only
//	anycast               one shared prefix from every site
//	proactive-superprefix per-site prefix + covering prefix from all sites
//	reactive-anycast      per-site prefix; on failure all other sites
//	                      announce the failed site's prefix
//	proactive-prepending  per-site prefix announced un-prepended at its
//	                      site and prepended (×k) from all other sites
//	combined              reactive-anycast + proactive-superprefix (§4)
//
// Each site is a distinct BGP speaker sharing the CDN's origin ASN, holds a
// dedicated /24, and can be failed: the site withdraws all announcements
// and drops packets, after which the controller's health monitor fires the
// technique's reactive behavior (if any) and updates DNS.
package core

import (
	"fmt"
	"net/netip"
	"sort"

	"bestofboth/internal/bgp"
	"bestofboth/internal/dataplane"
	"bestofboth/internal/dns"
	"bestofboth/internal/netsim"
	"bestofboth/internal/obs"
	"bestofboth/internal/topology"
	"bestofboth/internal/traffic"
)

// Default prefix plan, modeled on the paper's PEERING allocation
// (184.164.244.0/23): each site gets a /24 from a /21, the /21 itself is
// the covering superprefix, and a separate /24 serves pure anycast.
var (
	// SuperPrefix covers all per-site prefixes.
	SuperPrefix = netip.MustParsePrefix("184.164.240.0/21")
	// AnycastPrefix is the shared prefix for the pure-anycast technique.
	AnycastPrefix = netip.MustParsePrefix("184.164.248.0/24")
	// AnycastServiceAddr is the service address inside AnycastPrefix.
	AnycastServiceAddr = netip.MustParseAddr("184.164.248.10")
)

// SitePrefix returns the /24 assigned to the i-th site (i < 8 under the
// default /21 plan).
func SitePrefix(i int) netip.Prefix {
	a := SuperPrefix.Addr().As4()
	return netip.PrefixFrom(netip.AddrFrom4([4]byte{a[0], a[1], a[2] + byte(i), 0}), 24)
}

// ServiceAddr returns the service address (.10) within a prefix.
func ServiceAddr(p netip.Prefix) netip.Addr {
	a := p.Addr().As4()
	return netip.AddrFrom4([4]byte{a[0], a[1], a[2], 10})
}

// Site is one CDN point of presence.
type Site struct {
	Code string
	Node topology.NodeID
	// Prefix is the site's dedicated unicast /24.
	Prefix netip.Prefix
	// Addr is the service address within Prefix that DNS hands out to
	// steer clients here.
	Addr netip.Addr
	// Prefix6/Addr6 are the site's /48 and v6 service address when the
	// CDN runs dual stack (EnableDualStack).
	Prefix6 netip.Prefix
	Addr6   netip.Addr
}

// announcement tracks one live origination for later withdrawal.
type announcement struct {
	node   topology.NodeID
	prefix netip.Prefix
}

// CDN is the controller: it owns the sites, drives announcements through
// the BGP layer per the active technique, maintains the authoritative DNS
// zone, and reacts to site failures.
type CDN struct {
	net    *bgp.Network     //cdnlint:nosnapshot wiring: the BGP layer snapshots itself (bgp.NetworkSnapshot)
	plane  *dataplane.Plane //cdnlint:nosnapshot wiring: FIBs are rebuilt by the BGP restore's OnBestChange replay
	sim    *netsim.Sim      //cdnlint:nosnapshot wiring: the kernel snapshots itself (netsim.Snapshot)
	auth   *dns.Authoritative
	sites  []*Site          //cdnlint:nosnapshot immutable site roster; restore requires an identically built CDN
	byCode map[string]*Site //cdnlint:nosnapshot index over sites, rebuilt at construction

	technique Technique
	announced []announcement
	failed    map[string]bool
	reacted   map[string]bool
	dualStack bool

	// Load state (nil unless the experiment config enables demand); both
	// halves are derived deterministically from the world config, so
	// restores re-derive instead of serializing them.
	demand *traffic.Model      //cdnlint:nosnapshot rebuilt deterministically from WorldConfig by experiment.NewWorld
	load   *traffic.Accountant //cdnlint:nosnapshot measurement sink; reattached by NewWorld and refolded on demand

	// DetectionDelay is the latency of the CDN's health monitoring between
	// a site failing and the controller reacting (reactive announcements,
	// DNS updates). CDNs deploy real-time monitoring [Odin, NEL]; the
	// default models ~1 s detection plus actuation.
	DetectionDelay netsim.Seconds

	// DNSTTL is the TTL on service A records.
	DNSTTL uint32

	// Metrics are nil until Instrument attaches a registry (nil-safe).
	m struct {
		transitions *obs.Counter
		byKind      [4]*obs.Counter
		reactions   *obs.Counter
	}
}

// Config bundles CDN construction parameters.
type Config struct {
	// DetectionDelay overrides the default 1 s failure-detection latency.
	DetectionDelay netsim.Seconds
	// DNSTTL overrides the default 600 s record TTL (the ~10 min median
	// TTL of popular domains per Moura et al.).
	DNSTTL uint32
	// ZoneOrigin overrides the default "cdn.example." zone.
	ZoneOrigin string
}

// New builds a CDN over every ClassCDN node in the topology, in site-code
// order of the generator's DefaultSiteCodes (stable ordering: by node id).
func New(net *bgp.Network, plane *dataplane.Plane, cfg Config) (*CDN, error) {
	if cfg.DetectionDelay == 0 {
		cfg.DetectionDelay = 1.0
	}
	if cfg.DNSTTL == 0 {
		cfg.DNSTTL = 600
	}
	if cfg.ZoneOrigin == "" {
		cfg.ZoneOrigin = "cdn.example."
	}
	c := &CDN{
		net:            net,
		plane:          plane,
		sim:            net.Sim(),
		auth:           dns.NewAuthoritative(cfg.ZoneOrigin),
		byCode:         map[string]*Site{},
		failed:         map[string]bool{},
		reacted:        map[string]bool{},
		DetectionDelay: cfg.DetectionDelay,
		DNSTTL:         cfg.DNSTTL,
	}
	nodes := net.Topology().NodesOfClass(topology.ClassCDN)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	if len(nodes) == 0 {
		return nil, fmt.Errorf("core: topology has no CDN sites")
	}
	if len(nodes) > 8 {
		return nil, fmt.Errorf("core: %d sites exceed the /21 prefix plan", len(nodes))
	}
	for i, n := range nodes {
		if n.Site == "" {
			return nil, fmt.Errorf("core: CDN node %s has no site code", n.Name)
		}
		p := SitePrefix(i)
		s := &Site{Code: n.Site, Node: n.ID, Prefix: p, Addr: ServiceAddr(p)}
		c.sites = append(c.sites, s)
		c.byCode[s.Code] = s
	}
	return c, nil
}

// Sites returns all sites in stable order.
func (c *CDN) Sites() []*Site { return c.sites }

// Site returns the site with the given code, or nil.
func (c *CDN) Site(code string) *Site { return c.byCode[code] }

// Authoritative exposes the CDN's DNS server.
func (c *CDN) Authoritative() *dns.Authoritative { return c.auth }

// Instrument attaches controller metrics to r — site transitions (total
// and per kind) and failure reactions — and instruments the authoritative
// DNS server. A nil registry detaches.
func (c *CDN) Instrument(r *obs.Registry) {
	c.m.transitions = r.Counter("cdn_site_transitions_total")
	for k := TransitionCrash; k <= TransitionRecover; k++ {
		//lint:ignore cdnlint/obsnames per-kind family bounded by the TransitionKind enum
		c.m.byKind[k] = r.Counter("cdn_site_transitions_" + k.String() + "_total")
	}
	c.m.reactions = r.Counter("cdn_failure_reactions_total")
	c.auth.Instrument(r)
	if c.load != nil {
		c.load.Instrument(r)
	}
}

// Technique returns the active technique, or nil before Deploy.
func (c *CDN) Technique() Technique { return c.technique }

// Plane returns the data plane (for catchment queries in examples/tools).
func (c *CDN) Plane() *dataplane.Plane { return c.plane }

// announce originates prefix at node and records it for cleanup. Under
// dual stack, plan prefixes are mirrored onto their /48 twins with the
// same policy, so every technique's announcement algebra carries over to
// IPv6 unchanged.
func (c *CDN) announce(node topology.NodeID, prefix netip.Prefix, pol *bgp.OriginPolicy) error {
	if err := c.net.Originate(node, prefix, pol); err != nil {
		return err
	}
	c.announced = append(c.announced, announcement{node, prefix})
	if c.dualStack {
		if p6, ok := c.v6Counterpart(prefix); ok {
			if err := c.net.Originate(node, p6, pol); err != nil {
				return err
			}
			c.announced = append(c.announced, announcement{node, p6})
		}
	}
	return nil
}

// withdraw removes one origination (and its v6 mirror) and forgets it.
func (c *CDN) withdraw(node topology.NodeID, prefix netip.Prefix) {
	c.net.Withdraw(node, prefix)
	c.forget(node, prefix)
	if c.dualStack {
		if p6, ok := c.v6Counterpart(prefix); ok {
			c.net.Withdraw(node, p6)
			c.forget(node, p6)
		}
	}
}

// withdrawAll withdraws every live announcement made by node.
func (c *CDN) withdrawAll(node topology.NodeID) {
	kept := c.announced[:0]
	for _, a := range c.announced {
		if a.node == node {
			c.net.Withdraw(a.node, a.prefix)
		} else {
			kept = append(kept, a)
		}
	}
	c.announced = kept
}

// Deploy activates a technique: it installs the technique's
// normal-operation announcements and publishes DNS records. Deploy must be
// called once per CDN instance.
func (c *CDN) Deploy(t Technique) error {
	if c.technique != nil {
		return fmt.Errorf("core: technique %s already deployed", c.technique.Name())
	}
	c.technique = t
	if c.load != nil {
		if sh, ok := t.(Shedder); ok {
			c.load.SetShedding(sh.ShedsOverload())
		}
	}
	if err := t.Setup(c); err != nil {
		return fmt.Errorf("core: deploying %s: %w", t.Name(), err)
	}
	// Publish per-site service names and the main service name. The main
	// name initially maps every client to the technique's default: for
	// anycast the shared address, otherwise the first site (per-client
	// steering is applied by the harness via SteerAddr).
	for _, s := range c.sites {
		if err := c.auth.SetA(s.Code, c.DNSTTL, t.SteerAddr(c, s)); err != nil {
			return err
		}
		if c.dualStack {
			if err := c.auth.SetAAAA(s.Code, c.DNSTTL, c.SteerAddr6(s)); err != nil {
				return err
			}
		}
	}
	if err := c.auth.SetA("www", c.DNSTTL, t.SteerAddr(c, c.sites[0])); err != nil {
		return err
	}
	if c.dualStack {
		if err := c.auth.SetAAAA("www", c.DNSTTL, c.SteerAddr6(c.sites[0])); err != nil {
			return err
		}
	}
	return nil
}

// Failed reports whether the site is currently failed.
func (c *CDN) Failed(code string) bool { return c.failed[code] }

// AnnouncementsAt returns the number of live originations the controller
// currently holds at the site (0 for unknown sites).
func (c *CDN) AnnouncementsAt(code string) int {
	s := c.byCode[code]
	if s == nil {
		return 0
	}
	n := 0
	for _, a := range c.announced {
		if a.node == s.Node {
			n++
		}
	}
	return n
}

// HealthySites returns all non-failed sites.
func (c *CDN) HealthySites() []*Site {
	var out []*Site
	for _, s := range c.sites {
		if !c.failed[s.Code] {
			out = append(out, s)
		}
	}
	return out
}

// CatchmentOf returns the site currently attracting traffic from the
// client node toward addr, or nil if unreachable or delivered to a
// non-site node.
func (c *CDN) CatchmentOf(client topology.NodeID, addr netip.Addr) *Site {
	dest, ok := c.plane.Catchment(client, addr)
	if !ok {
		return nil
	}
	for _, s := range c.sites {
		if s.Node == dest {
			return s
		}
	}
	return nil
}

// CanSteer reports whether the active technique routes the client to the
// intended site when DNS hands out the steering address for that site —
// the paper's traffic-control metric (§5.4.2).
func (c *CDN) CanSteer(client topology.NodeID, site *Site) bool {
	got := c.CatchmentOf(client, c.technique.SteerAddr(c, site))
	return got != nil && got.Node == site.Node
}
