package core

import (
	"fmt"

	"bestofboth/internal/netsim"
	"bestofboth/internal/topology"
)

// Monitor is the CDN's health-monitoring subsystem. The paper's
// reactive-anycast "requires a real-time monitoring system to detect site
// outages, similar to ones that CDNs have deployed" (§4, citing Odin and
// Network Error Logging); this models one: every Interval seconds each
// site is probed from external vantage points over the live data plane
// (CDN sites share an origin AS, so eBGP loop prevention keeps them from
// reaching each other's prefixes — exactly why real CDNs measure from
// clients), and after Misses consecutive probe failures the controller
// reaction (ReactToFailure) fires. Detection latency therefore *emerges*
// from the probing schedule instead of being an assumed constant.
type Monitor struct {
	cdn *CDN
	// Interval is the per-site probe period in seconds.
	Interval netsim.Seconds
	// Misses is how many consecutive probe failures declare a site down.
	Misses int
	// OnDetect, if set, observes each detection (site code, virtual time).
	OnDetect func(code string, at netsim.Seconds)
	// Vantages are the external nodes probes originate from; a site is
	// declared down only when no vantage reaches it. Defaults to the
	// topology's tier-1 nodes.
	Vantages []topology.NodeID

	misses   map[string]int
	declared map[string]bool
	stopped  bool
	// Detections counts failures declared so far.
	Detections int
}

// StartMonitor begins health monitoring with the given probe interval and
// miss threshold. A typical configuration of 0.5 s × 3 misses yields
// ~1.5-2 s detection, matching the DetectionDelay the failover experiments
// assume.
func (c *CDN) StartMonitor(interval netsim.Seconds, misses int) (*Monitor, error) {
	if c.technique == nil {
		return nil, fmt.Errorf("core: deploy a technique before monitoring")
	}
	if interval <= 0 || misses <= 0 {
		return nil, fmt.Errorf("core: invalid monitor parameters interval=%v misses=%d", interval, misses)
	}
	m := &Monitor{
		cdn:      c,
		Interval: interval,
		Misses:   misses,
		misses:   map[string]int{},
		declared: map[string]bool{},
	}
	for _, n := range c.net.Topology().NodesOfClass(topology.ClassTier1) {
		m.Vantages = append(m.Vantages, n.ID)
	}
	if len(m.Vantages) == 0 {
		return nil, fmt.Errorf("core: no tier-1 vantage points in topology")
	}
	m.schedule()
	return m, nil
}

// Stop halts monitoring after the current cycle.
func (m *Monitor) Stop() { m.stopped = true }

func (m *Monitor) schedule() {
	m.cdn.sim.After(m.Interval, func() {
		if m.stopped {
			return
		}
		m.probeAll()
		m.schedule()
	})
}

// probeAll checks reachability of every site from a healthy vantage.
func (m *Monitor) probeAll() {
	for _, s := range m.cdn.sites {
		if m.declared[s.Code] && m.cdn.failed[s.Code] {
			continue // already handled this episode
		}
		ok := false
		for _, v := range m.Vantages {
			if m.probe(v, s) {
				ok = true
				break
			}
		}
		if ok {
			m.misses[s.Code] = 0
			m.declared[s.Code] = false
			continue
		}
		m.misses[s.Code]++
		if m.misses[s.Code] >= m.Misses && !m.declared[s.Code] {
			m.declared[s.Code] = true
			m.Detections++
			at := m.cdn.sim.Now()
			// The site may have crashed without the controller knowing
			// (CrashSite); mark it failed so the reaction can run.
			if !m.cdn.failed[s.Code] {
				m.cdn.markFailed(s)
			}
			m.cdn.ReactToFailure(s.Code)
			if m.OnDetect != nil {
				m.OnDetect(s.Code, at)
			}
		}
	}
}

// probe sends one health check: can the vantage reach the site's steering
// address, landing at that site?
func (m *Monitor) probe(vantage topology.NodeID, s *Site) bool {
	// An internal health check reaches the site over its own prefix; if
	// the site is down the packet is dropped at the site (or rerouted
	// elsewhere once other sites cover the prefix, which still means the
	// site itself is unhealthy).
	res := m.cdn.plane.Forward(vantage, s.Addr)
	return res.Delivered && res.Dest == s.Node
}
