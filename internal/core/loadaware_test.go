package core

import (
	"testing"

	"bestofboth/internal/dns"
	"bestofboth/internal/topology"
)

func lbClients(w *world, n int) []topology.NodeID {
	var out []topology.NodeID
	for _, node := range w.topo.Nodes {
		if node.Prefix.IsValid() {
			out = append(out, node.ID)
		}
		if len(out) == n {
			break
		}
	}
	return out
}

func TestLoadBalancerRespectsCapacity(t *testing.T) {
	w := newWorld(t, 70)
	if err := w.cdn.Deploy(Unicast{}); err != nil {
		t.Fatal(err)
	}
	w.converge()
	cap := map[string]int{}
	for _, s := range w.cdn.Sites() {
		cap[s.Code] = 10
	}
	lb, err := w.cdn.NewLoadBalancer(cap)
	if err != nil {
		t.Fatal(err)
	}
	clients := lbClients(w, 60)
	lb.Assign(clients)

	total := 0
	for _, s := range w.cdn.Sites() {
		if lb.Load(s.Code) > 10 {
			t.Fatalf("site %s over capacity: %d", s.Code, lb.Load(s.Code))
		}
		total += lb.Load(s.Code)
	}
	if total+lb.Shed != len(clients) {
		t.Fatalf("assignment accounting broken: %d placed + %d shed != %d", total, lb.Shed, len(clients))
	}
	if total < 55 {
		t.Fatalf("only %d/60 clients placed with total capacity 80", total)
	}
}

func TestLoadBalancerSpillsToNextNearest(t *testing.T) {
	w := newWorld(t, 71)
	if err := w.cdn.Deploy(Unicast{}); err != nil {
		t.Fatal(err)
	}
	w.converge()
	// One-slot capacity on every site forces spillover ordering.
	cap := map[string]int{}
	for _, s := range w.cdn.Sites() {
		cap[s.Code] = 1
	}
	lb, err := w.cdn.NewLoadBalancer(cap)
	if err != nil {
		t.Fatal(err)
	}
	clients := lbClients(w, 8)
	lb.Assign(clients)
	// All 8 one-slot sites fill with the 8 clients (unicast: everyone is
	// steerable everywhere).
	for _, s := range w.cdn.Sites() {
		if lb.Load(s.Code) != 1 {
			t.Fatalf("site %s load %d, want 1", s.Code, lb.Load(s.Code))
		}
	}
	// Assigning the same clients again is a no-op.
	lb.Assign(clients)
	for _, s := range w.cdn.Sites() {
		if lb.Load(s.Code) != 1 {
			t.Fatal("reassignment changed loads")
		}
	}
}

func TestLoadBalancerRebalanceAfterFailure(t *testing.T) {
	w := newWorld(t, 72)
	if err := w.cdn.Deploy(Unicast{}); err != nil {
		t.Fatal(err)
	}
	w.converge()
	lb, err := w.cdn.NewLoadBalancer(nil) // unlimited
	if err != nil {
		t.Fatal(err)
	}
	clients := lbClients(w, 40)
	lb.Assign(clients)

	// Find the most loaded site and fail it.
	var victim *Site
	for _, s := range w.cdn.Sites() {
		if victim == nil || lb.Load(s.Code) > lb.Load(victim.Code) {
			victim = s
		}
	}
	if lb.Load(victim.Code) == 0 {
		t.Skip("no site attracted load")
	}
	if _, err := w.cdn.FailSite(victim.Code); err != nil {
		t.Fatal(err)
	}
	w.converge()
	lb.Rebalance()

	if lb.Load(victim.Code) != 0 {
		t.Fatalf("failed site still has %d clients", lb.Load(victim.Code))
	}
	for _, id := range clients {
		s := lb.Assignment(id)
		if s == nil {
			continue // shed
		}
		if s.Code == victim.Code {
			t.Fatal("client still assigned to failed site")
		}
	}
}

func TestLoadBalancerRebalanceEvictsOverCapacity(t *testing.T) {
	w := newWorld(t, 73)
	w.cdn.Deploy(Unicast{})
	w.converge()
	lb, err := w.cdn.NewLoadBalancer(nil)
	if err != nil {
		t.Fatal(err)
	}
	clients := lbClients(w, 30)
	lb.Assign(clients)
	// Impose a tight cap afterwards and rebalance.
	var busiest *Site
	for _, s := range w.cdn.Sites() {
		if busiest == nil || lb.Load(s.Code) > lb.Load(busiest.Code) {
			busiest = s
		}
	}
	if lb.Load(busiest.Code) < 2 {
		t.Skip("load too flat to test eviction")
	}
	lb.Capacity = map[string]int{busiest.Code: 1}
	lb.Rebalance()
	if lb.Load(busiest.Code) != 1 {
		t.Fatalf("site %s load %d after cap 1", busiest.Code, lb.Load(busiest.Code))
	}
}

func TestLoadBalancerMapperFollowsAssignments(t *testing.T) {
	w := newWorld(t, 74)
	w.cdn.Deploy(Unicast{})
	w.converge()
	lb, err := w.cdn.NewLoadBalancer(nil)
	if err != nil {
		t.Fatal(err)
	}
	clients := lbClients(w, 10)
	lb.Assign(clients)
	lb.InstallMapper()

	resolver := dns.NewResolver(w.cdn.Authoritative())
	for _, id := range clients {
		s := lb.Assignment(id)
		if s == nil {
			continue
		}
		caddr := w.topo.Node(id).Prefix.Addr().Next()
		addrs, _, err := resolver.ResolveFor(0, "www.cdn.example", caddr)
		if err != nil {
			t.Fatal(err)
		}
		if len(addrs) != 1 || addrs[0] != s.Addr {
			t.Fatalf("client %d: DNS says %v, balancer says %v", id, addrs, s.Addr)
		}
	}
}

func TestLoadBalancerErrors(t *testing.T) {
	w := newWorld(t, 75)
	if _, err := w.cdn.NewLoadBalancer(nil); err == nil {
		t.Fatal("balancer before deploy accepted")
	}
	w.cdn.Deploy(Unicast{})
	if _, err := w.cdn.NewLoadBalancer(map[string]int{"zzz": 1}); err == nil {
		t.Fatal("capacity for unknown site accepted")
	}
}

func TestLoadBalancerShedsWhenFull(t *testing.T) {
	w := newWorld(t, 76)
	w.cdn.Deploy(Unicast{})
	w.converge()
	cap := map[string]int{}
	for _, s := range w.cdn.Sites() {
		cap[s.Code] = 0
	}
	lb, _ := w.cdn.NewLoadBalancer(cap)
	lb.Assign(lbClients(w, 5))
	if lb.Shed != 5 {
		t.Fatalf("shed = %d, want 5", lb.Shed)
	}
}
