package core

import (
	"fmt"
	"net/netip"

	"bestofboth/internal/topology"
	"bestofboth/internal/traffic"
)

// This file implements the two Sinha et al. distributed load-management
// algorithms ("Distributed Load Management in Anycast-based CDNs" and its
// journal successor) as first-class techniques beside the paper's five:
//
//	load-shift  prefix-granularity anycast load shifting — demand hashes
//	            into /27 buckets carved from the anycast /24, every bucket
//	            is announced everywhere, and the controller iteratively
//	            withdraws the most-loaded bucket from the most-overloaded
//	            site until no healthy site exceeds capacity. Withdrawals
//	            are the only move, so the announcement set descends a
//	            finite lattice: the iteration reaches a fixed point in at
//	            most sites×buckets steps and cannot oscillate — the
//	            papers' stability argument, made literal.
//	load-shed   overload-triggered shedding — plain anycast announcements;
//	            an overloaded site serves up to capacity and sheds the
//	            excess (the accountant's shedding policy).
//
// Load state (a traffic.Model plus traffic.Accountant) attaches to the CDN
// via AttachLoad; it is derived deterministically from the world config,
// so snapshots regenerate rather than serialize it.

// LoadBuckets is the number of /27 load-shift buckets carved from
// AnycastPrefix (a /24 splits into exactly eight /27s).
const LoadBuckets = traffic.MaxBuckets

// MaxRebalanceRounds bounds the load-shift control loop. The lattice
// argument gives sites×buckets as the true bound; 128 covers the full
// 8×8 plan with slack.
const MaxRebalanceRounds = 128

// LoadBucketPrefix returns the i-th /27 load-shift bucket inside
// AnycastPrefix (i < LoadBuckets).
func LoadBucketPrefix(i int) netip.Prefix {
	a := AnycastPrefix.Addr().As4()
	return netip.PrefixFrom(netip.AddrFrom4([4]byte{a[0], a[1], a[2], byte(i * 32)}), 27)
}

// LoadBucketAddr returns the service address (.10 within the bucket) that
// demand hashed into bucket i targets.
func LoadBucketAddr(i int) netip.Addr {
	a := AnycastPrefix.Addr().As4()
	return netip.AddrFrom4([4]byte{a[0], a[1], a[2], byte(i*32 + 10)})
}

// DemandAddresser is implemented by techniques whose user demand targets a
// per-target address (rather than the main service record): load-shift
// demand goes to the target's bucket address.
type DemandAddresser interface {
	DemandAddr(c *CDN, target topology.NodeID) netip.Addr
}

// Rebalancer is implemented by techniques with a post-convergence control
// loop. The experiment harness alternates Rebalance with BGP convergence
// until Rebalance reports no change (the fixed point) or
// MaxRebalanceRounds elapses.
type Rebalancer interface {
	// Rebalance performs one control-loop step against converged routing
	// state, returning whether it changed any announcement.
	Rebalance(c *CDN) (changed bool, err error)
}

// Shedder is implemented by techniques that shed overload instead of
// serving it degraded; Deploy switches the accountant's policy from it.
type Shedder interface {
	ShedsOverload() bool
}

// AttachLoad wires a demand model and its accountant into the controller.
// Call before Deploy; the experiment layer does this for every world whose
// config enables demand.
func (c *CDN) AttachLoad(m *traffic.Model, a *traffic.Accountant) {
	c.demand = m
	c.load = a
}

// Demand returns the attached demand model, or nil.
func (c *CDN) Demand() *traffic.Model { return c.demand }

// Load returns the attached load accountant, or nil.
func (c *CDN) Load() *traffic.Accountant { return c.load }

// siteIndexOf maps a dataplane destination node to its index in the
// stable site order, or -1.
func (c *CDN) siteIndexOf(node topology.NodeID) int {
	for i, s := range c.sites {
		if s.Node == node {
			return i
		}
	}
	return -1
}

// demandAddr is the address a target's user demand flows toward under the
// active technique: the technique's per-target address when it implements
// DemandAddresser (load-shift buckets), otherwise the main service
// record's address — the same default Deploy publishes as "www", modeling
// un-steered resolution.
func (c *CDN) demandAddr(target topology.NodeID) netip.Addr {
	if da, ok := c.technique.(DemandAddresser); ok {
		return da.DemandAddr(c, target)
	}
	return c.technique.SteerAddr(c, c.sites[0])
}

// RefreshLoad re-folds current catchments into the load accountant: each
// target's demand is attributed to the site whose catchment it is in at
// this instant (unserved if none). Every lifecycle transition triggers a
// refresh, so failed or drained sites cannot retain stale offered/shed
// counters — the fold's Begin zeroes every site before re-attribution.
// No-op without attached load state or before Deploy.
func (c *CDN) RefreshLoad() {
	if c.load == nil || c.demand == nil || c.technique == nil {
		return
	}
	c.load.Fold(c.demand, func(id topology.NodeID) int {
		dest, ok := c.plane.Catchment(id, c.demandAddr(id))
		if !ok {
			return -1
		}
		return c.siteIndexOf(dest)
	})
}

// DemandSiteOf returns the site currently catching the target's user
// demand (the catchment of its demand address), or nil. Scenario events
// (flash crowds) use it to find the population whose demand a site's
// catchment carries.
func (c *CDN) DemandSiteOf(target topology.NodeID) *Site {
	if c.technique == nil {
		return nil
	}
	return c.CatchmentOf(target, c.demandAddr(target))
}

// announcedAt reports whether node currently originates prefix.
func (c *CDN) announcedAt(node topology.NodeID, prefix netip.Prefix) bool {
	for _, a := range c.announced {
		if a.node == node && a.prefix == prefix {
			return true
		}
	}
	return false
}

// --- load-shift (Sinha et al. prefix-granularity anycast shifting) ----------

// LoadShift is the Sinha et al. prefix-granularity load-shifting
// technique. Demand hashes into /27 buckets of the anycast /24; every
// healthy site announces the covering /24 plus every bucket, and the
// rebalance loop withdraws the most-loaded bucket from the most-overloaded
// site until no healthy site exceeds capacity. The covering /24 keeps
// every bucket reachable even if a bucket's last announcement disappears
// with a failed site.
//
// Base optionally layers the bucket overlay on another announcement
// technique (its per-site prefixes and reactions run unchanged beside the
// buckets); nil is the pure anycast-bucket form.
type LoadShift struct {
	Base Technique
}

// Name implements Technique.
func (t LoadShift) Name() string {
	if t.Base != nil {
		return "load-shift+" + t.Base.Name()
	}
	return "load-shift"
}

// Setup announces the base technique's prefixes (if any), the covering
// anycast /24, and every bucket /27 from every site.
func (t LoadShift) Setup(c *CDN) error {
	if t.Base != nil {
		if err := t.Base.Setup(c); err != nil {
			return err
		}
	}
	_, baseIsAnycast := t.Base.(Anycast)
	for _, s := range c.sites {
		if !baseIsAnycast { // Anycast base already announced the /24
			if err := c.announce(s.Node, AnycastPrefix, nil); err != nil {
				return err
			}
		}
		for b := 0; b < LoadBuckets; b++ {
			if err := c.announce(s.Node, LoadBucketPrefix(b), nil); err != nil {
				return err
			}
		}
	}
	return nil
}

// OnSiteFailure delegates to the base technique; for the bucket overlay
// the failed site's withdrawal suffices (anycast semantics).
func (t LoadShift) OnSiteFailure(c *CDN, failed *Site) error {
	if t.Base != nil {
		return t.Base.OnSiteFailure(c, failed)
	}
	return nil
}

// OnSiteRecovery restores the base technique's announcements and the full
// bucket set at the site; a fresh rebalance pass re-derives any shifts the
// failure episode invalidated.
func (t LoadShift) OnSiteRecovery(c *CDN, s *Site) error {
	if t.Base != nil {
		if err := t.Base.OnSiteRecovery(c, s); err != nil {
			return err
		}
	}
	if _, baseIsAnycast := t.Base.(Anycast); !baseIsAnycast {
		if err := c.announce(s.Node, AnycastPrefix, nil); err != nil {
			return err
		}
	}
	for b := 0; b < LoadBuckets; b++ {
		if err := c.announce(s.Node, LoadBucketPrefix(b), nil); err != nil {
			return err
		}
	}
	return nil
}

// SteerAddr returns the base technique's steering address, or the shared
// anycast address in the pure form (BGP, not the CDN, picks the site).
func (t LoadShift) SteerAddr(c *CDN, s *Site) netip.Addr {
	if t.Base != nil {
		return t.Base.SteerAddr(c, s)
	}
	return AnycastServiceAddr
}

// DemandAddr implements DemandAddresser: demand targets its bucket's
// service address.
func (t LoadShift) DemandAddr(c *CDN, target topology.NodeID) netip.Addr {
	if c.demand != nil {
		if b := c.demand.Bucket(target); b >= 0 {
			return LoadBucketAddr(b)
		}
	}
	return AnycastServiceAddr
}

// Rebalance implements Rebalancer: one step of the Sinha et al.
// algorithm. It folds per-⟨site, bucket⟩ offered load from converged
// catchments; if no healthy site is over capacity it reports the fixed
// point, otherwise it withdraws the most-loaded bucket (lowest index on
// ties) still announced elsewhere from the most-overloaded site (lowest
// index on ties). Because the only move is a withdrawal, repeated steps
// strictly shrink the announcement set and must reach a fixed point —
// the papers' provable-stability property.
func (t LoadShift) Rebalance(c *CDN) (bool, error) {
	m := c.demand
	if m == nil || c.load == nil {
		return false, nil
	}
	if m.NumSites() != len(c.sites) {
		return false, fmt.Errorf("core: demand model has %d sites, CDN has %d", m.NumSites(), len(c.sites))
	}
	nb := m.NumBuckets()
	load := make([][]int64, len(c.sites))
	for i := range load {
		load[i] = make([]int64, nb)
	}
	m.Each(func(id topology.NodeID, micro int64, bucket int) {
		dest, ok := c.plane.Catchment(id, LoadBucketAddr(bucket))
		if !ok {
			return
		}
		if si := c.siteIndexOf(dest); si >= 0 {
			load[si][bucket] += micro
		}
	})
	worst, worstExcess := -1, int64(0)
	for i, s := range c.sites {
		if c.failed[s.Code] {
			continue
		}
		var off int64
		for _, v := range load[i] {
			off += v
		}
		if excess := off - m.Capacity(i); excess > worstExcess {
			worst, worstExcess = i, excess
		}
	}
	if worst < 0 {
		return false, nil // fixed point: no healthy site above capacity
	}
	// The heaviest bucket at the overloaded site that is announced there
	// and still announced at at least one other healthy site, so the
	// withdrawal moves load instead of stranding it.
	best, bestLoad := -1, int64(0)
	for b := 0; b < nb; b++ {
		if load[worst][b] <= bestLoad {
			continue
		}
		if !c.announcedAt(c.sites[worst].Node, LoadBucketPrefix(b)) {
			continue
		}
		elsewhere := false
		for i, s := range c.sites {
			if i != worst && !c.failed[s.Code] && c.announcedAt(s.Node, LoadBucketPrefix(b)) {
				elsewhere = true
				break
			}
		}
		if elsewhere {
			best, bestLoad = b, load[worst][b]
		}
	}
	if best < 0 {
		return false, nil // stable: overload persists but no movable bucket remains
	}
	c.withdraw(c.sites[worst].Node, LoadBucketPrefix(best))
	return true, nil
}

// Tradeoffs: prefix-granularity movement retains partial control, anycast
// buckets keep availability high, and announcement churn at overload time
// carries medium risk.
func (LoadShift) Tradeoffs() Tradeoffs { return Tradeoffs{Medium, High, Medium} }

// --- load-shed (Sinha et al. overload-triggered shedding) -------------------

// LoadShed is overload-triggered shedding over plain anycast: BGP places
// clients, and a site offered more than its capacity serves exactly its
// capacity and sheds the excess. Announcement behavior is identical to
// Anycast; the policy lives in the load accountant.
type LoadShed struct{}

// Name implements Technique.
func (LoadShed) Name() string { return "load-shed" }

// Setup announces the shared prefix everywhere (as Anycast).
func (LoadShed) Setup(c *CDN) error { return Anycast{}.Setup(c) }

// OnSiteFailure does nothing: the withdrawal suffices.
func (LoadShed) OnSiteFailure(*CDN, *Site) error { return nil }

// OnSiteRecovery re-announces the shared prefix at the site.
func (LoadShed) OnSiteRecovery(c *CDN, s *Site) error {
	return Anycast{}.OnSiteRecovery(c, s)
}

// SteerAddr returns the shared anycast address.
func (LoadShed) SteerAddr(_ *CDN, _ *Site) netip.Addr { return AnycastServiceAddr }

// ShedsOverload implements Shedder.
func (LoadShed) ShedsOverload() bool { return true }

// Tradeoffs: anycast's low control and high availability; shedding bounds
// site load so operational risk stays low.
func (LoadShed) Tradeoffs() Tradeoffs { return Tradeoffs{Low, High, Low} }

// LoadTechniques returns the two Sinha et al. load-management techniques
// at their defaults.
func LoadTechniques() []Technique {
	return []Technique{LoadShift{}, LoadShed{}}
}

// SevenTechniques returns the paper's five announcement techniques plus
// the two load-management techniques — the set the user-weighted
// evaluation compares.
func SevenTechniques() []Technique {
	return []Technique{
		ProactiveSuperprefix{},
		ReactiveAnycast{},
		ProactivePrepending{Prepends: 3},
		Anycast{},
		Unicast{},
		LoadShift{},
		LoadShed{},
	}
}
