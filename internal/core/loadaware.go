package core

import (
	"fmt"
	"net/netip"
	"sort"

	"bestofboth/internal/iptrie"
	"bestofboth/internal/topology"
)

// LoadBalancer assigns clients to sites under per-site capacity limits —
// the "load distribution" control goal of §3-4 (cf. FastRoute's load-aware
// anycast layers): traffic control exists so the CDN can move clients off
// hot sites, which pure anycast cannot do. Assignments prefer the
// lowest-latency steerable site with spare capacity and spill over to the
// next-nearest otherwise.
type LoadBalancer struct {
	cdn *CDN
	// Capacity is the maximum number of assigned clients per site code.
	Capacity map[string]int

	assigned   map[string]int
	assignment map[topology.NodeID]*Site
	// Shed counts clients no healthy site had capacity for.
	Shed int
}

// NewLoadBalancer builds a balancer over the CDN's sites. Sites missing
// from capacity are treated as unlimited.
func (c *CDN) NewLoadBalancer(capacity map[string]int) (*LoadBalancer, error) {
	if c.technique == nil {
		return nil, fmt.Errorf("core: deploy a technique before load balancing")
	}
	for code := range capacity {
		if c.byCode[code] == nil {
			return nil, fmt.Errorf("core: capacity for unknown site %q", code)
		}
	}
	return &LoadBalancer{
		cdn:        c,
		Capacity:   capacity,
		assigned:   map[string]int{},
		assignment: map[topology.NodeID]*Site{},
	}, nil
}

// Assignment returns the site currently assigned to a client, or nil.
func (lb *LoadBalancer) Assignment(client topology.NodeID) *Site {
	return lb.assignment[client]
}

// Load returns the number of clients assigned to a site.
func (lb *LoadBalancer) Load(code string) int { return lb.assigned[code] }

// hasRoom reports whether a site can take one more client.
func (lb *LoadBalancer) hasRoom(code string) bool {
	cap, limited := lb.Capacity[code]
	return !limited || lb.assigned[code] < cap
}

// Assign maps each client to the lowest-latency healthy steerable site
// with spare capacity, spilling to farther sites when the nearest is full.
// Clients that cannot be placed are shed (counted, unassigned).
func (lb *LoadBalancer) Assign(clients []topology.NodeID) {
	for _, client := range clients {
		if cur := lb.assignment[client]; cur != nil {
			continue // already placed
		}
		site := lb.pick(client)
		if site == nil {
			lb.Shed++
			continue
		}
		lb.assignment[client] = site
		lb.assigned[site.Code]++
	}
}

// pick returns the best available site for one client.
func (lb *LoadBalancer) pick(client topology.NodeID) *Site {
	c := lb.cdn
	type cand struct {
		s *Site
		d float64
	}
	var cands []cand
	for _, s := range c.HealthySites() {
		if !lb.hasRoom(s.Code) {
			continue
		}
		cands = append(cands, cand{s, c.plane.StaticDelay(s.Node, client)})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].d < cands[j].d })
	// Prefer steerable sites in latency order, then fall back to any
	// healthy site with room.
	for _, cd := range cands {
		if c.CanSteer(client, cd.s) {
			return cd.s
		}
	}
	if len(cands) > 0 {
		return cands[0].s
	}
	return nil
}

// Rebalance reassigns the clients of failed or over-capacity sites. Call
// it after failures or capacity changes; clients keep their site when it
// remains healthy and within capacity (assignment stability).
func (lb *LoadBalancer) Rebalance() {
	c := lb.cdn
	// First pass: evict clients from failed sites and from sites over
	// capacity (in deterministic client order, newest evicted first is not
	// tracked — evict by client id order).
	var evicted []topology.NodeID
	var ids []topology.NodeID
	for id := range lb.assignment {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	over := map[string]int{}
	for code, n := range lb.assigned {
		if cap, limited := lb.Capacity[code]; limited && n > cap {
			over[code] = n - cap
		}
	}
	for _, id := range ids {
		s := lb.assignment[id]
		if c.Failed(s.Code) {
			evicted = append(evicted, id)
			delete(lb.assignment, id)
			lb.assigned[s.Code]--
			continue
		}
		if over[s.Code] > 0 {
			over[s.Code]--
			evicted = append(evicted, id)
			delete(lb.assignment, id)
			lb.assigned[s.Code]--
		}
	}
	lb.Assign(evicted)
}

// InstallMapper points the CDN's end-user mapping at the balancer's
// assignments: ECS queries for the service name return each client's
// assigned site (falling back to BestSiteFor when unassigned).
func (lb *LoadBalancer) InstallMapper() {
	c := lb.cdn
	topo := c.net.Topology()
	clients := iptrie.New[topology.NodeID]()
	for _, n := range topo.Nodes {
		if n.Prefix.IsValid() {
			clients.Insert(n.Prefix, n.ID)
		}
	}
	www := "www." + c.auth.Origin()
	c.auth.SetMapper(func(name string, client netip.Prefix) ([]netip.Addr, uint32, uint8, bool) {
		if name != www {
			return nil, 0, 0, false
		}
		_, node, ok := clients.Lookup(client.Addr())
		if !ok {
			return nil, 0, 0, false
		}
		site := lb.assignment[node]
		if site == nil || c.Failed(site.Code) {
			site = c.BestSiteFor(node)
		}
		if site == nil {
			return nil, 0, 0, false
		}
		return []netip.Addr{c.technique.SteerAddr(c, site)}, c.DNSTTL, 24, true
	})
}
