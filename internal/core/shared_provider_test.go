package core

import (
	"testing"

	"bestofboth/internal/bgp"
	"bestofboth/internal/dataplane"
	"bestofboth/internal/netsim"
	"bestofboth/internal/topology"
)

// newSharedWorld builds a world where all CDN sites share two tier-1
// providers — the real-CDN deployment of §4 that makes scoped
// announcements viable.
func newSharedWorld(t *testing.T, seed int64) *world {
	t.Helper()
	topo, err := topology.Generate(topology.GenConfig{
		Seed: seed, NumStub: 80, NumEyeball: 60, NumUniversity: 16,
		CDNSharedProviders: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim := netsim.New(seed)
	net := bgp.New(sim, topo, bgp.Config{MRAI: 30, MRAIJitter: 0.2, ProcMin: 0.02, ProcMax: 0.3})
	plane := dataplane.New(net)
	cdn, err := New(net, plane, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return &world{sim: sim, topo: topo, net: net, plane: plane, cdn: cdn}
}

func TestSharedProvidersGiveScopedCoverage(t *testing.T) {
	w := newSharedWorld(t, 50)
	if err := w.cdn.Deploy(ProactivePrepending{Prepends: 3, Scoped: true}); err != nil {
		t.Fatal(err)
	}
	w.converge()
	client := w.someClient(t)

	// Control: with backups scoped to the shared tier-1s, every site
	// remains fully steerable (the backup never outranks the primary at a
	// neighbor that hears both).
	for _, s := range w.cdn.Sites() {
		if !w.cdn.CanSteer(client.ID, s) {
			t.Fatalf("scoped prepending with shared providers cannot steer to %s", s.Code)
		}
	}

	// Availability: failing any site leaves its prefix reachable via the
	// scoped backups at the shared providers — no reconfiguration needed.
	failed := w.cdn.Site("atl")
	w.cdn.FailSite("atl")
	w.converge()
	after := w.cdn.CatchmentOf(client.ID, failed.Addr)
	if after == nil {
		t.Fatal("scoped backups did not provide failover despite shared providers")
	}
	if after.Node == failed.Node {
		t.Fatal("traffic still reaches the failed site")
	}
}

func TestDisjointProvidersLimitScopedCoverage(t *testing.T) {
	// The PEERING-faithful default: atl shares no neighbor ASN with any
	// other site, so scoped prepending installs no backups for it and the
	// prefix goes dark on failure — the reason the paper's evaluation
	// prepends from all sites (§5.2).
	w := newWorld(t, 51)
	if err := w.cdn.Deploy(ProactivePrepending{Prepends: 3, Scoped: true}); err != nil {
		t.Fatal(err)
	}
	w.converge()
	client := w.someClient(t)
	failed := w.cdn.Site("atl")
	w.cdn.FailSite("atl")
	w.converge()
	if after := w.cdn.CatchmentOf(client.ID, failed.Addr); after != nil {
		t.Fatalf("expected no failover coverage for atl under disjoint providers, got %s", after.Code)
	}
}

func TestSharedProvidersMEDFailover(t *testing.T) {
	w := newSharedWorld(t, 52)
	if err := w.cdn.Deploy(ProactiveMED{}); err != nil {
		t.Fatal(err)
	}
	w.converge()
	client := w.someClient(t)
	for _, s := range w.cdn.Sites() {
		if !w.cdn.CanSteer(client.ID, s) {
			t.Fatalf("MED with shared providers cannot steer to %s", s.Code)
		}
	}
	failed := w.cdn.Site("msn")
	w.cdn.FailSite("msn")
	w.converge()
	after := w.cdn.CatchmentOf(client.ID, failed.Addr)
	if after == nil || after.Node == failed.Node {
		t.Fatalf("MED failover with shared providers broken: %+v", after)
	}
}
