package core

import (
	"testing"
)

// TestConcurrentMultiSiteFailure fails three sites at once under
// reactive-anycast: the surviving sites must cover all three prefixes.
func TestConcurrentMultiSiteFailure(t *testing.T) {
	w := newWorld(t, 60)
	if err := w.cdn.Deploy(ReactiveAnycast{}); err != nil {
		t.Fatal(err)
	}
	w.converge()
	client := w.someClient(t)

	for _, code := range []string{"ams", "atl", "slc"} {
		if _, err := w.cdn.FailSite(code); err != nil {
			t.Fatal(err)
		}
	}
	w.converge()
	if got := len(w.cdn.HealthySites()); got != 5 {
		t.Fatalf("healthy sites = %d, want 5", got)
	}
	for _, code := range []string{"ams", "atl", "slc"} {
		failed := w.cdn.Site(code)
		after := w.cdn.CatchmentOf(client.ID, failed.Addr)
		if after == nil {
			t.Fatalf("prefix of %s unreachable after triple failure", code)
		}
		if w.cdn.Failed(w.topo.Node(after.Node).Site) {
			t.Fatalf("prefix of %s served by failed site %s", code, after.Code)
		}
	}
}

// TestFailureDuringConvergence fails a site before the initial deployment
// has converged: the system must still end consistent.
func TestFailureDuringConvergence(t *testing.T) {
	w := newWorld(t, 61)
	if err := w.cdn.Deploy(ReactiveAnycast{}); err != nil {
		t.Fatal(err)
	}
	// Only 2 seconds in: announcements are still propagating.
	w.sim.RunFor(2)
	if _, err := w.cdn.FailSite("bos"); err != nil {
		t.Fatal(err)
	}
	w.converge()
	client := w.someClient(t)
	after := w.cdn.CatchmentOf(client.ID, w.cdn.Site("bos").Addr)
	if after == nil || after.Code == "bos" {
		t.Fatalf("inconsistent state after mid-convergence failure: %+v", after)
	}
	// No node anywhere should retain a route whose origin is the dead
	// site.
	for _, n := range w.topo.Nodes {
		best := w.net.Speaker(n.ID).Best(w.cdn.Site("bos").Prefix)
		if best != nil && best.OriginNode == w.cdn.Site("bos").Node {
			t.Fatalf("node %s still routes to the dead bos origin", n.Name)
		}
	}
}

// TestRollingFailureAndRecovery cycles failures through every site one at
// a time, recovering each before failing the next, and verifies full
// steering is restored at the end.
func TestRollingFailureAndRecovery(t *testing.T) {
	w := newWorld(t, 62)
	if err := w.cdn.Deploy(ProactiveSuperprefix{}); err != nil {
		t.Fatal(err)
	}
	w.converge()
	client := w.someClient(t)
	for _, s := range w.cdn.Sites() {
		if _, err := w.cdn.FailSite(s.Code); err != nil {
			t.Fatalf("fail %s: %v", s.Code, err)
		}
		w.converge()
		if _, err := w.cdn.RecoverSite(s.Code); err != nil {
			t.Fatalf("recover %s: %v", s.Code, err)
		}
		w.converge()
	}
	for _, s := range w.cdn.Sites() {
		if !w.cdn.CanSteer(client.ID, s) {
			t.Fatalf("steering to %s broken after rolling failures", s.Code)
		}
	}
	if got := len(w.cdn.HealthySites()); got != 8 {
		t.Fatalf("healthy sites = %d after full recovery", got)
	}
}

// TestAllButOneSiteFails drives the CDN down to a single surviving site
// under anycast; the survivor must absorb every reachable client.
func TestAllButOneSiteFails(t *testing.T) {
	w := newWorld(t, 63)
	if err := w.cdn.Deploy(Anycast{}); err != nil {
		t.Fatal(err)
	}
	w.converge()
	sites := w.cdn.Sites()
	for _, s := range sites[:len(sites)-1] {
		if _, err := w.cdn.FailSite(s.Code); err != nil {
			t.Fatal(err)
		}
	}
	w.converge()
	survivor := sites[len(sites)-1]
	reached, total := 0, 0
	for _, n := range w.topo.Nodes {
		if !n.Prefix.IsValid() {
			continue
		}
		total++
		got := w.cdn.CatchmentOf(n.ID, AnycastServiceAddr)
		if got == nil {
			continue
		}
		if got.Node != survivor.Node {
			t.Fatalf("client %s served by %s, not the sole survivor", n.Name, got.Code)
		}
		reached++
	}
	if reached < total*9/10 {
		t.Fatalf("only %d/%d clients reach the surviving site", reached, total)
	}
}

// TestDNSFallbackWhenAllSitesFail verifies the controller clears the zone
// when no healthy site remains.
func TestDNSFallbackWhenAllSitesFail(t *testing.T) {
	w := newWorld(t, 64)
	if err := w.cdn.Deploy(Unicast{}); err != nil {
		t.Fatal(err)
	}
	w.converge()
	for _, s := range w.cdn.Sites() {
		if _, err := w.cdn.FailSite(s.Code); err != nil {
			t.Fatal(err)
		}
	}
	w.converge()
	if got := authQueryA(t, w.cdn.Authoritative(), "www.cdn.example."); len(got) != 0 {
		t.Fatalf("www still resolves after total outage: %v", got)
	}
}
