package core

import (
	"net/netip"

	"bestofboth/internal/bgp"
	"bestofboth/internal/topology"
)

// Rating is a qualitative level used in the paper's Table 2.
type Rating string

// Ratings used by Table 2.
const (
	Low    Rating = "low"
	Medium Rating = "medium"
	High   Rating = "high"
)

// Tradeoffs summarizes a technique's qualitative properties (Table 2).
type Tradeoffs struct {
	Control      Rating
	Availability Rating
	Risk         Rating
}

// Technique is a CDN client-to-site routing strategy (Figure 1): what each
// site announces in normal operation, what changes after a site failure,
// and which address DNS returns to steer a client to a given site.
type Technique interface {
	// Name returns the technique's identifier as used in the paper.
	Name() string
	// Setup installs the normal-operation announcements.
	Setup(c *CDN) error
	// OnSiteFailure installs announcements other sites make after the
	// failed site withdrew (Figure 1, right column). Called by the
	// controller after failure detection.
	OnSiteFailure(c *CDN, failed *Site) error
	// OnSiteRecovery restores the site's normal-operation announcements
	// and unwinds any reactive state.
	OnSiteRecovery(c *CDN, s *Site) error
	// SteerAddr returns the address DNS hands to clients the CDN wants at
	// the given site.
	SteerAddr(c *CDN, s *Site) netip.Addr
	// Tradeoffs returns the Table 2 qualitative ratings.
	Tradeoffs() Tradeoffs
}

// --- unicast ---------------------------------------------------------------

// Unicast is DNS-based redirection over per-site prefixes (§2): full
// control, but failover gated entirely by DNS caching.
type Unicast struct{}

// Name implements Technique.
func (Unicast) Name() string { return "unicast" }

// Setup announces each site's own /24 from that site only.
func (Unicast) Setup(c *CDN) error {
	for _, s := range c.sites {
		if err := c.announce(s.Node, s.Prefix, nil); err != nil {
			return err
		}
	}
	return nil
}

// OnSiteFailure does nothing: unicast relies on DNS record updates alone.
func (Unicast) OnSiteFailure(*CDN, *Site) error { return nil }

// OnSiteRecovery re-announces the site prefix.
func (Unicast) OnSiteRecovery(c *CDN, s *Site) error {
	return c.announce(s.Node, s.Prefix, nil)
}

// SteerAddr returns the site's unicast service address.
func (Unicast) SteerAddr(_ *CDN, s *Site) netip.Addr { return s.Addr }

// Tradeoffs implements Table 2: high control, low availability, low risk.
func (Unicast) Tradeoffs() Tradeoffs { return Tradeoffs{High, Low, Low} }

// --- anycast ---------------------------------------------------------------

// Anycast announces one shared prefix from every site (§2): no per-client
// control, fast failover via BGP reconvergence.
type Anycast struct{}

// Name implements Technique.
func (Anycast) Name() string { return "anycast" }

// Setup announces the shared prefix everywhere.
func (Anycast) Setup(c *CDN) error {
	for _, s := range c.sites {
		if err := c.announce(s.Node, AnycastPrefix, nil); err != nil {
			return err
		}
	}
	return nil
}

// OnSiteFailure does nothing: the failed site's withdrawal suffices.
func (Anycast) OnSiteFailure(*CDN, *Site) error { return nil }

// OnSiteRecovery re-announces the shared prefix at the site.
func (Anycast) OnSiteRecovery(c *CDN, s *Site) error {
	return c.announce(s.Node, AnycastPrefix, nil)
}

// SteerAddr returns the shared anycast address regardless of site: BGP, not
// the CDN, picks the site.
func (Anycast) SteerAddr(_ *CDN, _ *Site) netip.Addr { return AnycastServiceAddr }

// Tradeoffs implements Table 2: low control, high availability, low risk.
func (Anycast) Tradeoffs() Tradeoffs { return Tradeoffs{Low, High, Low} }

// --- proactive-superprefix ---------------------------------------------------

// ProactiveSuperprefix is the hybrid non-solution of §3: per-site /24 plus
// a covering prefix announced from every site. Control equals unicast, but
// failover waits out the /24's withdrawal convergence (~100 s median,
// minutes at the tail — Appendix A) because longest-prefix match keeps
// using invalid /24 routes over the valid covering routes.
type ProactiveSuperprefix struct{}

// Name implements Technique.
func (ProactiveSuperprefix) Name() string { return "proactive-superprefix" }

// Setup announces each site's /24 at that site and the covering superprefix
// everywhere.
func (ProactiveSuperprefix) Setup(c *CDN) error {
	for _, s := range c.sites {
		if err := c.announce(s.Node, s.Prefix, nil); err != nil {
			return err
		}
		if err := c.announce(s.Node, SuperPrefix, nil); err != nil {
			return err
		}
	}
	return nil
}

// OnSiteFailure does nothing: the covering prefix is already in place.
func (ProactiveSuperprefix) OnSiteFailure(*CDN, *Site) error { return nil }

// OnSiteRecovery restores both announcements.
func (ProactiveSuperprefix) OnSiteRecovery(c *CDN, s *Site) error {
	if err := c.announce(s.Node, s.Prefix, nil); err != nil {
		return err
	}
	return c.announce(s.Node, SuperPrefix, nil)
}

// SteerAddr returns the site's unicast service address.
func (ProactiveSuperprefix) SteerAddr(_ *CDN, s *Site) netip.Addr { return s.Addr }

// Tradeoffs implements Table 2: high control, medium availability, low risk.
func (ProactiveSuperprefix) Tradeoffs() Tradeoffs { return Tradeoffs{High, Medium, Low} }

// --- reactive-anycast --------------------------------------------------------

// ReactiveAnycast is the paper's first technique (§4): unicast in normal
// operation; upon failure, every other site immediately announces the
// failed site's prefix, injecting valid replacement routes that converge at
// anycast speed. Control is full; the cost is a global routing
// reconfiguration at failure time (high operational risk, §7).
type ReactiveAnycast struct{}

// Name implements Technique.
func (ReactiveAnycast) Name() string { return "reactive-anycast" }

// Setup is identical to unicast.
func (ReactiveAnycast) Setup(c *CDN) error {
	for _, s := range c.sites {
		if err := c.announce(s.Node, s.Prefix, nil); err != nil {
			return err
		}
	}
	return nil
}

// OnSiteFailure makes every healthy site announce the failed site's prefix.
func (ReactiveAnycast) OnSiteFailure(c *CDN, failed *Site) error {
	for _, s := range c.HealthySites() {
		if err := c.announce(s.Node, failed.Prefix, nil); err != nil {
			return err
		}
	}
	return nil
}

// OnSiteRecovery withdraws the reactive announcements from other sites and
// restores the site's own announcement.
func (ReactiveAnycast) OnSiteRecovery(c *CDN, s *Site) error {
	for _, other := range c.sites {
		if other.Node != s.Node {
			c.withdraw(other.Node, s.Prefix)
		}
	}
	return c.announce(s.Node, s.Prefix, nil)
}

// SteerAddr returns the site's unicast service address.
func (ReactiveAnycast) SteerAddr(_ *CDN, s *Site) netip.Addr { return s.Addr }

// Tradeoffs implements Table 2: high control, high availability, high risk.
func (ReactiveAnycast) Tradeoffs() Tradeoffs { return Tradeoffs{High, High, High} }

// --- proactive-prepending ------------------------------------------------------

// ProactivePrepending is the paper's second technique (§4): every site's
// prefix is announced un-prepended at that site and prepended k times from
// every other site, so backup routes pre-exist failure and no
// reconfiguration is needed. Control is partial — LOCAL_PREF can override
// path length — and deeper prepending trades failover speed for control
// (Appendix C.2).
type ProactivePrepending struct {
	// Prepends is the number of extra origin-ASN copies at backup sites
	// (the paper evaluates 3 and 5).
	Prepends int
	// Scoped, when true, announces backup routes only to neighbors that
	// also connect to the prefix's primary site, the paper's
	// recommendation (§4) for retaining control.
	Scoped bool
}

// Name implements Technique.
func (t ProactivePrepending) Name() string {
	if t.Scoped {
		return "proactive-prepending-scoped"
	}
	return "proactive-prepending"
}

// Setup announces every site prefix from every site: un-prepended at its
// own site, prepended elsewhere.
func (t ProactivePrepending) Setup(c *CDN) error {
	k := t.Prepends
	if k <= 0 {
		k = 3
	}
	for _, owner := range c.sites {
		for _, s := range c.sites {
			if s.Node == owner.Node {
				if err := c.announce(s.Node, owner.Prefix, nil); err != nil {
					return err
				}
				continue
			}
			pol := &bgp.OriginPolicy{Prepend: k}
			if t.Scoped {
				pol = t.scopedPolicy(c, owner, s, k)
				if pol == nil {
					continue // no shared neighbors: nothing to announce
				}
			}
			if err := c.announce(s.Node, owner.Prefix, pol); err != nil {
				return err
			}
		}
	}
	return nil
}

// scopedPolicy restricts the backup announcement at site s for owner's
// prefix to neighbors (by ASN) that also have a session with the owner
// site, so every network hearing the prepended backup also hears the
// un-prepended primary and path length decides. Returns nil if s shares no
// neighbors with owner.
func (t ProactivePrepending) scopedPolicy(c *CDN, owner, s *Site, k int) *bgp.OriginPolicy {
	topo := c.net.Topology()
	ownerASNs := map[topology.ASN]bool{}
	for _, adj := range topo.Node(owner.Node).Adj {
		ownerASNs[topo.Node(adj.To).ASN] = true
	}
	pol := &bgp.OriginPolicy{Prepend: k, PerNeighbor: map[topology.NodeID]bgp.NeighborPolicy{}}
	any := false
	for _, adj := range topo.Node(s.Node).Adj {
		if ownerASNs[topo.Node(adj.To).ASN] {
			pol.PerNeighbor[adj.To] = bgp.NeighborPolicy{Export: true, Prepend: k}
			any = true
		} else {
			pol.PerNeighbor[adj.To] = bgp.NeighborPolicy{Export: false}
		}
	}
	if !any {
		return nil
	}
	return pol
}

// OnSiteFailure does nothing: the prepended backups are already announced.
func (ProactivePrepending) OnSiteFailure(*CDN, *Site) error { return nil }

// OnSiteRecovery restores the site's announcements: its own prefix
// un-prepended plus prepended backups for every other site's prefix.
func (t ProactivePrepending) OnSiteRecovery(c *CDN, s *Site) error {
	k := t.Prepends
	if k <= 0 {
		k = 3
	}
	if err := c.announce(s.Node, s.Prefix, nil); err != nil {
		return err
	}
	for _, owner := range c.sites {
		if owner.Node == s.Node {
			continue
		}
		pol := &bgp.OriginPolicy{Prepend: k}
		if t.Scoped {
			pol = t.scopedPolicy(c, owner, s, k)
			if pol == nil {
				continue
			}
		}
		if err := c.announce(s.Node, owner.Prefix, pol); err != nil {
			return err
		}
	}
	return nil
}

// SteerAddr returns the site's service address (its prefix is globally
// announced; the un-prepended origin should win path-length ties).
func (ProactivePrepending) SteerAddr(_ *CDN, s *Site) netip.Addr { return s.Addr }

// Tradeoffs implements Table 2: medium control, high availability, low risk.
func (ProactivePrepending) Tradeoffs() Tradeoffs { return Tradeoffs{Medium, High, Low} }

// --- combined (reactive-anycast + superprefix, §4) -----------------------------

// Combined layers proactive-superprefix under reactive-anycast. The paper
// implemented it and found it faster only for the fastest ~20% of
// failovers and much worse in the tail — an undesirable tradeoff kept here
// for the ablation bench.
type Combined struct{}

// Name implements Technique.
func (Combined) Name() string { return "combined" }

// Setup is proactive-superprefix's setup.
func (Combined) Setup(c *CDN) error { return ProactiveSuperprefix{}.Setup(c) }

// OnSiteFailure is reactive-anycast's reaction.
func (Combined) OnSiteFailure(c *CDN, failed *Site) error {
	return ReactiveAnycast{}.OnSiteFailure(c, failed)
}

// OnSiteRecovery unwinds the reactive announcements and restores both
// proactive layers.
func (Combined) OnSiteRecovery(c *CDN, s *Site) error {
	for _, other := range c.sites {
		if other.Node != s.Node {
			c.withdraw(other.Node, s.Prefix)
		}
	}
	return ProactiveSuperprefix{}.OnSiteRecovery(c, s)
}

// SteerAddr returns the site's unicast service address.
func (Combined) SteerAddr(_ *CDN, s *Site) netip.Addr { return s.Addr }

// Tradeoffs: as reactive-anycast (high control, high risk); availability
// measured medium-high (tail-heavy).
func (Combined) Tradeoffs() Tradeoffs { return Tradeoffs{High, Medium, High} }

// forget drops a tracked announcement without withdrawing (used after a
// direct net.Withdraw).
func (c *CDN) forget(node topology.NodeID, prefix netip.Prefix) {
	kept := c.announced[:0]
	for _, a := range c.announced {
		if a.node == node && a.prefix == prefix {
			continue
		}
		kept = append(kept, a)
	}
	c.announced = kept
}

// AllTechniques returns one instance of every technique at its paper
// defaults, in the order used throughout the evaluation.
func AllTechniques() []Technique {
	return []Technique{
		ProactiveSuperprefix{},
		ReactiveAnycast{},
		ProactivePrepending{Prepends: 3},
		Anycast{},
		Unicast{},
		Combined{},
	}
}
