package core

import (
	"fmt"
	"sort"
	"strings"

	"bestofboth/internal/bgp"
)

// ErrBadTechnique reports a technique name that resolves to nothing.
var ErrBadTechnique = fmt.Errorf("unknown technique")

// TechniqueByName resolves a technique name — the paper's five plus
// combined, the two Sinha et al. load techniques, the scoped prepending
// variant, and the composed form "load-shift+<base>" (prefix-granularity
// shifting layered on any base). This is the single name vocabulary shared
// by the CLI flags, scenario events, and control-plane mutations.
func TechniqueByName(name string) (Technique, error) {
	if base, ok := strings.CutPrefix(name, "load-shift+"); ok {
		bt, err := TechniqueByName(base)
		if err != nil {
			return nil, err
		}
		return LoadShift{Base: bt}, nil
	}
	if name == "proactive-prepending-scoped" {
		return ProactivePrepending{Prepends: 3, Scoped: true}, nil
	}
	for _, t := range SevenTechniques() {
		if t.Name() == name {
			return t, nil
		}
	}
	for _, t := range AllTechniques() {
		if t.Name() == name {
			return t, nil
		}
	}
	return nil, fmt.Errorf("core: %w %q", ErrBadTechnique, name)
}

// TechniquesBySpec parses a comma-separated technique spec. "all" is the
// classic six (AllTechniques); "seven" is the paper's five plus the two
// load-management techniques (SevenTechniques).
func TechniquesBySpec(spec string) ([]Technique, error) {
	switch spec {
	case "all":
		return AllTechniques(), nil
	case "seven":
		return SevenTechniques(), nil
	}
	var out []Technique
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		t, err := TechniqueByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: no techniques given")
	}
	return out, nil
}

// SwitchTechnique replaces the deployed technique live: every current
// announcement is withdrawn, the new technique's normal-operation
// announcements and DNS records are installed, and the failure semantics
// of currently-failed sites are replayed under the new technique (their
// announcements withdrawn again and the new technique's failure reaction
// fired). Load accounting is re-folded at the end so the accountant never
// reports catchments of the old announcement set.
//
// The caller owns convergence: like Deploy, the switch only enqueues
// routing work. On error the controller may hold a partial announcement
// set — control-plane callers dry-run the switch on a snapshot first and
// restore on failure.
func (c *CDN) SwitchTechnique(t Technique) error {
	if c.technique == nil {
		return fmt.Errorf("core: switch to %s: %w", t.Name(), ErrNotDeployed)
	}
	// Tear down the old technique's world-wide announcement set.
	for _, a := range c.announced {
		c.net.Withdraw(a.node, a.prefix)
	}
	c.announced = c.announced[:0]
	c.reacted = map[string]bool{}
	// The new technique decides the shedding policy afresh (Deploy only
	// sets it when the technique is a Shedder, so clear the old policy).
	if c.load != nil {
		c.load.SetShedding(false)
	}
	c.technique = nil
	if err := c.Deploy(t); err != nil {
		return fmt.Errorf("core: switch: %w", err)
	}
	// Deploy installed normal-operation announcements at every site,
	// including failed ones; replay each open failure episode under the
	// new technique (sorted for determinism).
	var failed []string
	for code := range c.failed {
		failed = append(failed, code)
	}
	sort.Strings(failed)
	for _, code := range failed {
		c.withdrawAll(c.byCode[code].Node)
		if err := c.ReactToFailure(code); err != nil {
			return fmt.Errorf("core: switch: replaying failure of %q: %w", code, err)
		}
	}
	c.RefreshLoad()
	return nil
}

// SetAnnouncePolicy re-originates a site's own unicast prefix with an
// AS-path prepend of the given depth (0 restores the plain announcement) —
// the control plane's announcement-policy mutation, modeling the routine
// traffic-engineering knob operators turn on per-site prefixes. The active
// technique must announce per-site prefixes (anycast-only techniques have
// no per-site origination to repolicy) and the site must be healthy.
func (c *CDN) SetAnnouncePolicy(code string, prepends int) error {
	s := c.byCode[code]
	if s == nil {
		return fmt.Errorf("core: %w %q", ErrUnknownSite, code)
	}
	if c.technique == nil {
		return fmt.Errorf("core: site %q: %w", code, ErrNotDeployed)
	}
	if c.failed[code] {
		return fmt.Errorf("core: %w: %q", ErrSiteFailed, code)
	}
	if prepends < 0 {
		return fmt.Errorf("core: negative prepend count %d", prepends)
	}
	if !c.announcedAt(s.Node, s.Prefix) {
		return fmt.Errorf("core: technique %s does not announce %s's own prefix", c.technique.Name(), code)
	}
	c.withdraw(s.Node, s.Prefix)
	var pol *bgp.OriginPolicy
	if prepends > 0 {
		pol = &bgp.OriginPolicy{Prepend: prepends}
	}
	return c.announce(s.Node, s.Prefix, pol)
}
