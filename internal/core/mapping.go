package core

import (
	"net/netip"

	"bestofboth/internal/iptrie"
	"bestofboth/internal/topology"
)

// EnableEndUserMapping installs per-client DNS answers on the CDN's
// authoritative server ("end-user mapping", Chen et al. — the paper's
// reference [9] for how CDNs steer clients today). Resolvers forwarding an
// EDNS Client Subnet receive the steering address of the lowest-latency
// healthy site that the active technique can actually route the client to;
// answers carry a /24 scope so resolvers cache them per client network.
//
// The mapper consults live controller state on every query: after a site
// failure it stops handing out that site as soon as the zone is asked,
// independent of the static record updates in ReactToFailure.
func (c *CDN) EnableEndUserMapping() {
	topo := c.net.Topology()
	clients := iptrie.New[topology.NodeID]()
	for _, n := range topo.Nodes {
		if n.Prefix.IsValid() {
			clients.Insert(n.Prefix, n.ID)
		}
	}
	www := "www." + c.auth.Origin()
	c.auth.SetMapper(func(name string, client netip.Prefix) ([]netip.Addr, uint32, uint8, bool) {
		if name != www {
			return nil, 0, 0, false
		}
		_, node, ok := clients.Lookup(client.Addr())
		if !ok {
			return nil, 0, 0, false
		}
		site := c.BestSiteFor(node)
		if site == nil {
			return nil, 0, 0, false
		}
		return []netip.Addr{c.technique.SteerAddr(c, site)}, c.DNSTTL, 24, true
	})
}

// BestSiteFor returns the lowest-latency healthy site that the active
// technique steers the client to, or — if none is steerable — the
// lowest-latency healthy site regardless. Returns nil with no technique
// deployed or no healthy sites.
func (c *CDN) BestSiteFor(client topology.NodeID) *Site {
	if c.technique == nil {
		return nil
	}
	var (
		bestSteer, bestAny   *Site
		steerDelay, anyDelay float64
	)
	for _, s := range c.HealthySites() {
		d := c.plane.StaticDelay(s.Node, client)
		if bestAny == nil || d < anyDelay {
			bestAny, anyDelay = s, d
		}
		if bestSteer == nil || d < steerDelay {
			if c.CanSteer(client, s) {
				bestSteer, steerDelay = s, d
			}
		}
	}
	if bestSteer != nil {
		return bestSteer
	}
	return bestAny
}
