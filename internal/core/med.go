package core

import (
	"net/netip"

	"bestofboth/internal/bgp"
	"bestofboth/internal/topology"
)

// ProactiveMED is the §4 variant the paper sketches but does not evaluate:
// "BGP MED could also be used for neighbors that support it." Every site's
// prefix is announced un-prepended at its own site with MED 0 and from
// backup sites with a high MED, restricted to neighbors that also connect
// to the primary site. Because both announcements reach such a neighbor
// from the same neighbor AS (the CDN's origin AS), the MED comparison
// applies and deterministically prefers the primary — giving unicast-grade
// control — while the backup routes pre-position failover state exactly
// like proactive-prepending, without lengthening the AS path (and hence
// without prepending's convergence penalty, Appendix C.2).
//
// The tradeoff: only neighbors shared with the primary site receive
// backups, so coverage equals the scoped-prepending variant's.
type ProactiveMED struct {
	// BackupMED is the MED on backup announcements (default 100).
	BackupMED int
}

func (t ProactiveMED) med() int {
	if t.BackupMED <= 0 {
		return 100
	}
	return t.BackupMED
}

// Name implements Technique.
func (ProactiveMED) Name() string { return "proactive-med" }

// Setup announces each prefix at its site with MED 0 and at other sites
// with the backup MED, scoped to shared neighbors.
func (t ProactiveMED) Setup(c *CDN) error {
	for _, owner := range c.sites {
		for _, s := range c.sites {
			if s.Node == owner.Node {
				if err := c.announce(s.Node, owner.Prefix, &bgp.OriginPolicy{MED: 0}); err != nil {
					return err
				}
				continue
			}
			pol := t.backupPolicy(c, owner, s)
			if pol == nil {
				continue
			}
			pol.MED = t.med()
			if err := c.announce(s.Node, owner.Prefix, pol); err != nil {
				return err
			}
		}
	}
	return nil
}

// backupPolicy scopes the MED backup announcement at site s for owner's
// prefix to neighbors (by ASN) shared with the owner site. Returns nil if
// no neighbor is shared.
func (ProactiveMED) backupPolicy(c *CDN, owner, s *Site) *bgp.OriginPolicy {
	topo := c.net.Topology()
	ownerASNs := map[topology.ASN]bool{}
	for _, adj := range topo.Node(owner.Node).Adj {
		ownerASNs[topo.Node(adj.To).ASN] = true
	}
	pol := &bgp.OriginPolicy{PerNeighbor: map[topology.NodeID]bgp.NeighborPolicy{}}
	any := false
	for _, adj := range topo.Node(s.Node).Adj {
		if ownerASNs[topo.Node(adj.To).ASN] {
			pol.PerNeighbor[adj.To] = bgp.NeighborPolicy{Export: true}
			any = true
		} else {
			pol.PerNeighbor[adj.To] = bgp.NeighborPolicy{Export: false}
		}
	}
	if !any {
		return nil
	}
	return pol
}

// OnSiteFailure does nothing: the MED backups are already announced.
func (ProactiveMED) OnSiteFailure(*CDN, *Site) error { return nil }

// OnSiteRecovery restores the site's primary announcement and its backup
// announcements for other sites' prefixes.
func (t ProactiveMED) OnSiteRecovery(c *CDN, s *Site) error {
	if err := c.announce(s.Node, s.Prefix, &bgp.OriginPolicy{MED: 0}); err != nil {
		return err
	}
	for _, owner := range c.sites {
		if owner.Node == s.Node {
			continue
		}
		pol := t.backupPolicy(c, owner, s)
		if pol == nil {
			continue
		}
		pol.MED = t.med()
		if err := c.announce(s.Node, owner.Prefix, pol); err != nil {
			return err
		}
	}
	return nil
}

// SteerAddr returns the site's unicast service address.
func (ProactiveMED) SteerAddr(_ *CDN, s *Site) netip.Addr { return s.Addr }

// Tradeoffs: control like scoped prepending, availability like
// proactive-prepending, low risk.
func (ProactiveMED) Tradeoffs() Tradeoffs { return Tradeoffs{High, High, Low} }

// ExtensionTechniques returns the techniques beyond the paper's evaluated
// set: the MED variant sketched in §4 and the scoped-prepending deployment
// recommendation.
func ExtensionTechniques() []Technique {
	return []Technique{
		ProactiveMED{},
		ProactivePrepending{Prepends: 3, Scoped: true},
	}
}
