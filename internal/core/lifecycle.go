package core

import (
	"errors"
	"fmt"

	"bestofboth/internal/netsim"
	"bestofboth/internal/topology"
)

// Sentinel errors for site-lifecycle validation. All lifecycle entry points
// wrap these with %w, so callers discriminate with errors.Is instead of
// string matching.
var (
	// ErrUnknownSite reports a site code with no corresponding site.
	ErrUnknownSite = errors.New("unknown site")
	// ErrNotDeployed reports a lifecycle operation before Deploy.
	ErrNotDeployed = errors.New("no technique deployed")
	// ErrSiteFailed reports a failure transition on an already-failed site.
	ErrSiteFailed = errors.New("site already failed")
	// ErrSiteNotFailed reports a recovery of a site that is not failed.
	ErrSiteNotFailed = errors.New("site is not failed")
)

// TransitionKind enumerates the site-lifecycle transitions.
type TransitionKind uint8

const (
	// TransitionCrash takes the site down with no controller reaction.
	TransitionCrash TransitionKind = iota
	// TransitionFail is the paper's §5.2 failure: crash, then the
	// controller reaction after DetectionDelay.
	TransitionFail
	// TransitionDrain is graceful maintenance: withdraw + immediate
	// reaction while the data plane keeps serving.
	TransitionDrain
	// TransitionRecover returns a failed or drained site to service.
	TransitionRecover
)

// String names the transition kind.
func (k TransitionKind) String() string {
	switch k {
	case TransitionCrash:
		return "crash"
	case TransitionFail:
		return "fail"
	case TransitionDrain:
		return "drain"
	case TransitionRecover:
		return "recover"
	default:
		return fmt.Sprintf("TransitionKind(%d)", uint8(k))
	}
}

// SiteTransition records one applied lifecycle transition: which site, what
// kind, and the virtual time it took effect.
type SiteTransition struct {
	Site string
	Node topology.NodeID
	Kind TransitionKind
	At   netsim.Seconds
}

// Transition is the validated entry point shared by every site-lifecycle
// operation. It checks the site exists, a technique is deployed, and the
// site's failure state admits the transition, then applies the kind's
// effect and returns the typed transition record. CrashSite, FailSite,
// DrainSite, and RecoverSite are thin wrappers over it.
func (c *CDN) Transition(code string, kind TransitionKind) (SiteTransition, error) {
	s := c.byCode[code]
	if s == nil {
		return SiteTransition{}, fmt.Errorf("core: %w %q", ErrUnknownSite, code)
	}
	if c.technique == nil {
		return SiteTransition{}, fmt.Errorf("core: site %q: %w", code, ErrNotDeployed)
	}
	switch kind {
	case TransitionCrash, TransitionFail, TransitionDrain:
		if c.failed[code] {
			return SiteTransition{}, fmt.Errorf("core: %w: %q", ErrSiteFailed, code)
		}
	case TransitionRecover:
		if !c.failed[code] {
			return SiteTransition{}, fmt.Errorf("core: %w: %q", ErrSiteNotFailed, code)
		}
	default:
		return SiteTransition{}, fmt.Errorf("core: invalid transition kind %d", uint8(kind))
	}
	tr := SiteTransition{Site: code, Node: s.Node, Kind: kind, At: c.sim.Now()}

	var err error
	switch kind {
	case TransitionCrash:
		c.markFailed(s)
		c.plane.SetDown(s.Node, true)
	case TransitionFail:
		c.markFailed(s)
		c.plane.SetDown(s.Node, true)
		c.sim.After(c.DetectionDelay, func() {
			c.ReactToFailure(code)
		})
	case TransitionDrain:
		// Graceful: withdraw and react now, but keep forwarding — the
		// caller stops the data plane when draining is complete.
		c.markFailed(s)
		err = c.ReactToFailure(code)
	case TransitionRecover:
		err = c.recoverSite(s)
	}
	if err != nil {
		return SiteTransition{}, err
	}
	c.m.transitions.Inc()
	c.m.byKind[kind].Inc()
	// Re-fold load at the transition instant so no site — in particular a
	// drained-then-recovered one — retains offered/shed counters from a
	// catchment it no longer has (no-op without attached load state).
	c.RefreshLoad()
	return tr, nil
}

// markFailed opens a failure episode: the site is recorded failed, any
// previous reaction is forgotten, and its announcements are withdrawn.
// Shared by the crash/fail/drain transitions and the health monitor's
// crash detection.
func (c *CDN) markFailed(s *Site) {
	c.failed[s.Code] = true
	delete(c.reacted, s.Code)
	c.withdrawAll(s.Node)
}

// CrashSite takes a site down at the current virtual time without any
// controller reaction: the site stops forwarding and its announcements are
// withdrawn (its BGP sessions are gone), but nothing else happens until
// the health-monitoring path notices — use FailSite for the paper's
// fail-and-react sequence, or StartMonitor to detect crashes from probing.
func (c *CDN) CrashSite(code string) (SiteTransition, error) {
	return c.Transition(code, TransitionCrash)
}

// FailSite emulates a site failure at the current virtual time: the site
// withdraws all its announcements and stops forwarding (§5.2). After
// DetectionDelay the controller fires the technique's reactive behavior and
// repoints DNS names at a healthy site.
func (c *CDN) FailSite(code string) (SiteTransition, error) {
	return c.Transition(code, TransitionFail)
}

// DrainSite takes a site out of service gracefully (maintenance): the
// controller withdraws the site's announcements and repoints DNS
// immediately — no detection delay, the operator initiated it — but the
// site keeps forwarding, so traffic still in flight or still arriving on
// stale routes is served while BGP converges away. The caller decides when
// draining is complete and stops the data plane (Plane().SetDown), which
// the scenario engine's maintenance-drain event does after its grace
// period. RecoverSite returns the site to service.
func (c *CDN) DrainSite(code string) (SiteTransition, error) {
	return c.Transition(code, TransitionDrain)
}

// RecoverSite restores a failed site: it resumes forwarding, reinstalls the
// technique's normal-operation announcements for the site, and restores the
// DNS records the failure reaction repointed — the site's own name and the
// main service name.
func (c *CDN) RecoverSite(code string) (SiteTransition, error) {
	return c.Transition(code, TransitionRecover)
}

// recoverSite applies the recovery effect; validation happened in
// Transition.
func (c *CDN) recoverSite(s *Site) error {
	delete(c.failed, s.Code)
	c.plane.SetDown(s.Node, false)
	if err := c.technique.OnSiteRecovery(c, s); err != nil {
		return err
	}
	if err := c.auth.SetA(s.Code, c.DNSTTL, c.technique.SteerAddr(c, s)); err != nil {
		return err
	}
	if c.dualStack {
		if err := c.auth.SetAAAA(s.Code, c.DNSTTL, c.SteerAddr6(s)); err != nil {
			return err
		}
	}
	// Point the main name back at the first healthy site; with every site
	// recovered this is the deployment-time default again.
	best := c.HealthySites()[0]
	if c.dualStack {
		if err := c.auth.SetAAAA("www", c.DNSTTL, c.SteerAddr6(best)); err != nil {
			return err
		}
	}
	return c.auth.SetA("www", c.DNSTTL, c.technique.SteerAddr(c, best))
}

// ReactToFailure runs the controller's response to a detected site
// failure: the technique's reactive announcements plus DNS repointing. It
// is idempotent per failure episode.
func (c *CDN) ReactToFailure(code string) error {
	s := c.byCode[code]
	if s == nil {
		return fmt.Errorf("core: %w %q", ErrUnknownSite, code)
	}
	if !c.failed[code] {
		return fmt.Errorf("core: %w: %q", ErrSiteNotFailed, code)
	}
	if c.reacted[code] {
		return nil
	}
	c.reacted[code] = true
	c.m.reactions.Inc()
	if err := c.technique.OnSiteFailure(c, s); err != nil {
		return err
	}
	c.RefreshLoad()
	// DNS: repoint the failed site's name and the main name at a healthy
	// site.
	healthy := c.HealthySites()
	if len(healthy) == 0 {
		c.auth.RemoveA(s.Code)
		c.auth.RemoveA("www")
		return nil
	}
	backup := healthy[0]
	if err := c.auth.SetA(s.Code, c.DNSTTL, c.technique.SteerAddr(c, backup)); err != nil {
		return err
	}
	if c.dualStack {
		if err := c.auth.SetAAAA(s.Code, c.DNSTTL, c.SteerAddr6(backup)); err != nil {
			return err
		}
		if err := c.auth.SetAAAA("www", c.DNSTTL, c.SteerAddr6(backup)); err != nil {
			return err
		}
	}
	return c.auth.SetA("www", c.DNSTTL, c.technique.SteerAddr(c, backup))
}
