package core

import (
	"net/netip"
	"testing"

	"bestofboth/internal/dns"
)

func TestDualStackPrefixPlan(t *testing.T) {
	for i := 0; i < 8; i++ {
		p := SitePrefix6(i)
		if p.Bits() != 48 || !SuperPrefix6.Contains(p.Addr()) {
			t.Fatalf("SitePrefix6(%d) = %v not a /48 under %v", i, p, SuperPrefix6)
		}
		if !p.Contains(ServiceAddr6(p)) {
			t.Fatalf("service addr outside prefix: %v", ServiceAddr6(p))
		}
	}
	if SitePrefix6(0) == SitePrefix6(1) {
		t.Fatal("v6 site prefixes collide")
	}
}

func TestDualStackCatchmentsMirrorV4(t *testing.T) {
	w := newWorld(t, 80)
	if err := w.cdn.EnableDualStack(); err != nil {
		t.Fatal(err)
	}
	if err := w.cdn.Deploy(Unicast{}); err != nil {
		t.Fatal(err)
	}
	w.converge()
	if !w.cdn.DualStack() {
		t.Fatal("DualStack() false")
	}
	client := w.someClient(t)
	// Every site is reachable over both families and v4/v6 catchments
	// agree: the announcement algebra is identical.
	for _, s := range w.cdn.Sites() {
		got4 := w.cdn.CatchmentOf(client.ID, s.Addr)
		dest6, ok := w.plane.Catchment(client.ID, s.Addr6)
		if got4 == nil || !ok {
			t.Fatalf("site %s unreachable: v4=%v v6ok=%v", s.Code, got4, ok)
		}
		if got4.Node != dest6 {
			t.Fatalf("site %s: v4 catchment %d != v6 catchment %d", s.Code, got4.Node, dest6)
		}
	}
}

func TestDualStackReactiveFailoverOnV6(t *testing.T) {
	w := newWorld(t, 81)
	if err := w.cdn.EnableDualStack(); err != nil {
		t.Fatal(err)
	}
	if err := w.cdn.Deploy(ReactiveAnycast{}); err != nil {
		t.Fatal(err)
	}
	w.converge()
	client := w.someClient(t)
	failed := w.cdn.Site("atl")

	before, ok := w.plane.Catchment(client.ID, failed.Addr6)
	if !ok || before != failed.Node {
		t.Fatalf("v6 steering broken before failure: %v, %v", before, ok)
	}
	if _, err := w.cdn.FailSite("atl"); err != nil {
		t.Fatal(err)
	}
	w.converge()
	after, ok := w.plane.Catchment(client.ID, failed.Addr6)
	if !ok {
		t.Fatal("reactive-anycast left the /48 unreachable")
	}
	if after == failed.Node {
		t.Fatal("v6 traffic still reaches the failed site")
	}
	// Recovery restores the v6 steering too.
	if _, err := w.cdn.RecoverSite("atl"); err != nil {
		t.Fatal(err)
	}
	w.converge()
	restored, ok := w.plane.Catchment(client.ID, failed.Addr6)
	if !ok || restored != failed.Node {
		t.Fatalf("v6 steering not restored: %v, %v", restored, ok)
	}
}

func TestDualStackAnycastV6(t *testing.T) {
	w := newWorld(t, 82)
	w.cdn.EnableDualStack()
	if err := w.cdn.Deploy(Anycast{}); err != nil {
		t.Fatal(err)
	}
	w.converge()
	client := w.someClient(t)
	d4, ok4 := w.plane.Catchment(client.ID, AnycastServiceAddr)
	d6, ok6 := w.plane.Catchment(client.ID, AnycastServiceAddr6)
	if !ok4 || !ok6 || d4 != d6 {
		t.Fatalf("anycast catchments differ across families: %v/%v %v/%v", d4, ok4, d6, ok6)
	}
}

func TestDualStackDNSServesAAAA(t *testing.T) {
	w := newWorld(t, 83)
	w.cdn.EnableDualStack()
	if err := w.cdn.Deploy(Unicast{}); err != nil {
		t.Fatal(err)
	}
	w.converge()
	q := &dns.Message{
		Header:   dns.Header{ID: 1},
		Question: []dns.Question{{Name: "atl.cdn.example.", Type: dns.TypeAAAA}},
	}
	resp := w.cdn.Authoritative().Answer(q)
	if len(resp.Answer) != 1 || resp.Answer[0].A != w.cdn.Site("atl").Addr6 {
		t.Fatalf("AAAA answer = %+v", resp.Answer)
	}
	// After failure, the AAAA is repointed like the A record.
	w.cdn.FailSite("atl")
	w.converge()
	resp = w.cdn.Authoritative().Answer(q)
	if len(resp.Answer) != 1 || resp.Answer[0].A == w.cdn.Site("atl").Addr6 {
		t.Fatalf("AAAA not repointed after failure: %+v", resp.Answer)
	}
	if !resp.Answer[0].A.Is6() {
		t.Fatal("repointed AAAA is not IPv6")
	}
}

func TestEnableDualStackAfterDeployFails(t *testing.T) {
	w := newWorld(t, 84)
	w.cdn.Deploy(Unicast{})
	if err := w.cdn.EnableDualStack(); err == nil {
		t.Fatal("EnableDualStack after Deploy accepted")
	}
	if a := w.cdn.SteerAddr6(w.cdn.Sites()[0]); a != (netip.Addr{}) {
		t.Fatalf("SteerAddr6 without dual stack = %v", a)
	}
}
