package core

import (
	"errors"
	"testing"
)

// TestTechniqueByName round-trips every technique's own name plus the
// composed and scoped forms, and rejects garbage with ErrBadTechnique.
func TestTechniqueByName(t *testing.T) {
	names := []string{}
	for _, tech := range SevenTechniques() {
		names = append(names, tech.Name())
	}
	names = append(names, "combined", "proactive-prepending-scoped",
		"load-shift+unicast", "load-shift+reactive-anycast")
	for _, name := range names {
		tech, err := TechniqueByName(name)
		if err != nil {
			t.Fatalf("TechniqueByName(%q): %v", name, err)
		}
		if tech.Name() != name {
			t.Fatalf("TechniqueByName(%q) resolved to %q", name, tech.Name())
		}
	}
	if _, err := TechniqueByName("carrier-pigeon"); !errors.Is(err, ErrBadTechnique) {
		t.Fatalf("bogus name: got %v, want ErrBadTechnique", err)
	}
	if _, err := TechniqueByName("load-shift+carrier-pigeon"); !errors.Is(err, ErrBadTechnique) {
		t.Fatalf("bogus composed base: got %v, want ErrBadTechnique", err)
	}
	if techs, err := TechniquesBySpec("seven"); err != nil || len(techs) != 7 {
		t.Fatalf("spec \"seven\": %d techniques, err %v", len(techs), err)
	}
	if techs, err := TechniquesBySpec("anycast, unicast"); err != nil || len(techs) != 2 {
		t.Fatalf("comma spec: %d techniques, err %v", len(techs), err)
	}
}

// TestSwitchTechniqueConvergesToFreshDeployment is the equivalence gate
// for live technique switching: switching a converged world from A to B
// and reconverging must land on exactly the routing state a fresh world
// that deployed B directly converges to — including when a site failure is
// open across the switch, whose reaction must be replayed under B.
func TestSwitchTechniqueConvergesToFreshDeployment(t *testing.T) {
	cases := []struct {
		name     string
		from, to Technique
		fail     string // site failed before the switch ("" = none)
	}{
		{"unicast-to-anycast", Unicast{}, Anycast{}, ""},
		{"anycast-to-reactive", Anycast{}, ReactiveAnycast{}, ""},
		{"reactive-to-prepending-failed", ReactiveAnycast{}, ProactivePrepending{Prepends: 3}, "atl"},
		{"superprefix-to-combined-failed", ProactiveSuperprefix{}, Combined{}, "msn"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			// World 1: deploy A, (fail a site,) converge, switch to B.
			w1 := newWorld(t, 7)
			if err := w1.cdn.Deploy(tc.from); err != nil {
				t.Fatal(err)
			}
			w1.converge()
			if tc.fail != "" {
				if _, err := w1.cdn.FailSite(tc.fail); err != nil {
					t.Fatal(err)
				}
				w1.converge()
			}
			if err := w1.cdn.SwitchTechnique(tc.to); err != nil {
				t.Fatal(err)
			}
			w1.converge()
			if got := w1.cdn.Technique().Name(); got != tc.to.Name() {
				t.Fatalf("active technique %q after switch, want %q", got, tc.to.Name())
			}

			// World 2: same seed, deploy B directly (and fail the same site).
			w2 := newWorld(t, 7)
			if err := w2.cdn.Deploy(tc.to); err != nil {
				t.Fatal(err)
			}
			w2.converge()
			if tc.fail != "" {
				if _, err := w2.cdn.FailSite(tc.fail); err != nil {
					t.Fatal(err)
				}
				w2.converge()
			}

			if d1, d2 := w1.net.RouteStateDigest(), w2.net.RouteStateDigest(); d1 != d2 {
				t.Fatal("route state after switch differs from fresh deployment of the target technique")
			}
			if d1, d2 := w1.plane.FIBDigest(), w2.plane.FIBDigest(); d1 != d2 {
				t.Fatal("FIBs after switch differ from fresh deployment of the target technique")
			}
		})
	}
}

// TestSwitchTechniqueValidation covers the error paths: switching before
// Deploy fails with ErrNotDeployed; announcement-policy changes validate
// site, deployment, failure state, and per-site announcement presence.
func TestSwitchTechniqueValidation(t *testing.T) {
	w := newWorld(t, 3)
	if err := w.cdn.SwitchTechnique(Anycast{}); !errors.Is(err, ErrNotDeployed) {
		t.Fatalf("switch before deploy: got %v, want ErrNotDeployed", err)
	}
	if err := w.cdn.SetAnnouncePolicy("atl", 2); !errors.Is(err, ErrNotDeployed) {
		t.Fatalf("policy before deploy: got %v, want ErrNotDeployed", err)
	}
	if err := w.cdn.Deploy(Unicast{}); err != nil {
		t.Fatal(err)
	}
	w.converge()
	if err := w.cdn.SetAnnouncePolicy("nope", 2); !errors.Is(err, ErrUnknownSite) {
		t.Fatalf("unknown site: got %v, want ErrUnknownSite", err)
	}
	if err := w.cdn.SetAnnouncePolicy("atl", -1); err == nil {
		t.Fatal("negative prepends accepted")
	}
	if _, err := w.cdn.FailSite("atl"); err != nil {
		t.Fatal(err)
	}
	if err := w.cdn.SetAnnouncePolicy("atl", 2); !errors.Is(err, ErrSiteFailed) {
		t.Fatalf("policy on failed site: got %v, want ErrSiteFailed", err)
	}
	if _, err := w.cdn.RecoverSite("atl"); err != nil {
		t.Fatal(err)
	}
	w.converge()
	if err := w.cdn.SetAnnouncePolicy("atl", 2); err != nil {
		t.Fatalf("valid policy change: %v", err)
	}
	w.converge()

	// Anycast announces no per-site prefixes, so repolicying one is an error.
	w2 := newWorld(t, 3)
	if err := w2.cdn.Deploy(Anycast{}); err != nil {
		t.Fatal(err)
	}
	w2.converge()
	if err := w2.cdn.SetAnnouncePolicy("atl", 2); err == nil {
		t.Fatal("policy change accepted under a technique with no per-site announcement")
	}
}

// TestSetAnnouncePolicyPrependSheds is the behavioral check: prepending a
// site's own prefix must lengthen its advertised paths, and restoring
// prepends=0 must return routing to the original state bit-exactly.
func TestSetAnnouncePolicyPrependRoundTrip(t *testing.T) {
	w := newWorld(t, 11)
	if err := w.cdn.Deploy(Unicast{}); err != nil {
		t.Fatal(err)
	}
	w.converge()
	base := w.net.RouteStateDigest()
	if err := w.cdn.SetAnnouncePolicy("atl", 5); err != nil {
		t.Fatal(err)
	}
	w.converge()
	prepended := w.net.RouteStateDigest()
	if prepended == base {
		t.Fatal("5-prepend policy change did not alter route state")
	}
	if err := w.cdn.SetAnnouncePolicy("atl", 0); err != nil {
		t.Fatal(err)
	}
	w.converge()
	if got := w.net.RouteStateDigest(); got != base {
		t.Fatal("restoring prepends=0 did not return route state to baseline")
	}
}
