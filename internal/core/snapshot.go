package core

import (
	"fmt"
	"maps"
	"slices"

	"bestofboth/internal/dns"
	"bestofboth/internal/netsim"
)

// Snapshot is a deep copy of the controller's mutable state: the deployed
// technique, the live announcement ledger, failure/reaction bookkeeping, and
// the DNS zone contents. Together with the BGP and kernel snapshots it lets
// a converged deployment be rebuilt without re-running Deploy and the
// convergence phase.
//
// Techniques are stateless value types (their configuration, e.g. prepend
// depth, is immutable after construction), so the snapshot shares the
// technique itself.
type Snapshot struct {
	technique      Technique
	announced      []announcement
	failed         map[string]bool
	reacted        map[string]bool
	dualStack      bool
	detectionDelay netsim.Seconds
	dnsTTL         uint32
	zone           dns.ZoneSnapshot
}

// Snapshot deep-copies the controller state.
func (c *CDN) Snapshot() *Snapshot {
	return &Snapshot{
		technique:      c.technique,
		announced:      slices.Clone(c.announced),
		failed:         maps.Clone(c.failed),
		reacted:        maps.Clone(c.reacted),
		dualStack:      c.dualStack,
		detectionDelay: c.DetectionDelay,
		dnsTTL:         c.DNSTTL,
		zone:           c.auth.SnapshotZone(),
	}
}

// Restore installs a snapshot into a freshly built CDN over the same
// topology. The receiver must not have deployed a technique yet: Restore
// replaces Deploy (the announcements the snapshot records are already in the
// restored BGP state, so Setup must not run again).
func (c *CDN) Restore(snap *Snapshot) error {
	if c.technique != nil {
		return fmt.Errorf("core: cannot restore over deployed technique %s", c.technique.Name())
	}
	if len(c.sites) == 0 {
		return fmt.Errorf("core: cannot restore into a CDN with no sites")
	}
	c.technique = snap.technique
	if c.load != nil {
		// Restore replaces Deploy, so the accountant's overload policy must
		// be re-derived from the restored technique here.
		if sh, ok := snap.technique.(Shedder); ok {
			c.load.SetShedding(sh.ShedsOverload())
		}
	}
	c.announced = slices.Clone(snap.announced)
	c.failed = maps.Clone(snap.failed)
	c.reacted = maps.Clone(snap.reacted)
	c.DetectionDelay = snap.detectionDelay
	c.DNSTTL = snap.dnsTTL
	if snap.dualStack {
		c.dualStack = true
		for i, s := range c.sites {
			s.Prefix6 = SitePrefix6(i)
			s.Addr6 = ServiceAddr6(s.Prefix6)
		}
	}
	c.auth.RestoreZone(snap.zone)
	// Re-sync the data plane's notion of which sites forward: CrashSite sets
	// the node down, and that state lives in the plane, not the controller.
	for code := range c.failed {
		if s := c.byCode[code]; s != nil {
			c.plane.SetDown(s.Node, true)
		}
	}
	return nil
}
