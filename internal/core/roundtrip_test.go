package core

import (
	"fmt"
	"strings"
	"testing"

	"bestofboth/internal/dns"
)

// dnsRecordDigest renders the zone's A records as canonical text. Serial
// and query counters legitimately differ after a failure episode, so the
// digest compares what clients can actually resolve.
func dnsRecordDigest(t *testing.T, auth *dns.Authoritative) string {
	t.Helper()
	var b strings.Builder
	for _, name := range auth.Names() {
		fmt.Fprintf(&b, "%s:", name)
		for _, a := range authQueryA(t, auth, name) {
			fmt.Fprintf(&b, " %s", a)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// TestCrashRecoverRoundTrip is the leaked-state regression test: for every
// technique, failing a site, letting the controller react, recovering it,
// and converging must land in exactly the RIB/FIB/DNS state of a world
// that never failed. A technique whose OnSiteRecovery forgets to withdraw
// a reactive announcement (or whose recovery path forgets a DNS record)
// diverges here.
func TestCrashRecoverRoundTrip(t *testing.T) {
	const seed, failCode = 7, "sea1"
	for _, tech := range AllTechniques() {
		t.Run(tech.Name(), func(t *testing.T) {
			ref := newWorld(t, seed)
			if err := ref.cdn.Deploy(tech); err != nil {
				t.Fatal(err)
			}
			ref.converge()

			sub := newWorld(t, seed)
			if err := sub.cdn.Deploy(tech); err != nil {
				t.Fatal(err)
			}
			sub.converge()
			if _, err := sub.cdn.FailSite(failCode); err != nil {
				t.Fatal(err)
			}
			sub.converge() // withdrawal, detection, reaction all drain
			if _, err := sub.cdn.RecoverSite(failCode); err != nil {
				t.Fatal(err)
			}
			sub.converge()

			if got, want := sub.net.RouteStateDigest(), ref.net.RouteStateDigest(); got != want {
				t.Errorf("RIB state differs from never-failed world after fail+recover:\n%s",
					firstDiffLine(want, got))
			}
			if got, want := sub.plane.FIBDigest(), ref.plane.FIBDigest(); got != want {
				t.Errorf("FIB state differs from never-failed world after fail+recover:\n%s",
					firstDiffLine(want, got))
			}
			if got, want := dnsRecordDigest(t, sub.cdn.Authoritative()), dnsRecordDigest(t, ref.cdn.Authoritative()); got != want {
				t.Errorf("DNS records differ from never-failed world after fail+recover:\nwant:\n%s\ngot:\n%s", want, got)
			}
		})
	}
}

// firstDiffLine locates the first differing line of two large digests so
// failures are readable.
func firstDiffLine(want, got string) string {
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(w) && i < len(g); i++ {
		if w[i] != g[i] {
			return fmt.Sprintf("line %d:\n  want: %s\n  got:  %s", i+1, w[i], g[i])
		}
	}
	return fmt.Sprintf("lengths differ: want %d lines, got %d", len(w), len(g))
}

// TestDrainSite checks the graceful-maintenance path: announcements are
// withdrawn and DNS repointed immediately, the data plane keeps forwarding
// until the operator stops it, and recovery restores the pre-drain state.
func TestDrainSite(t *testing.T) {
	w := newWorld(t, 11)
	if err := w.cdn.Deploy(ReactiveAnycast{}); err != nil {
		t.Fatal(err)
	}
	w.converge()
	before := w.net.RouteStateDigest()

	s := w.cdn.Site("atl")
	if _, err := w.cdn.DrainSite("atl"); err != nil {
		t.Fatal(err)
	}
	// Draining is graceful: the site still forwards while routes move.
	if w.plane.IsDown(s.Node) {
		t.Fatal("drain stopped the data plane immediately")
	}
	if !w.cdn.Failed("atl") {
		t.Fatal("drained site not marked failed")
	}
	// The controller reacted immediately (no detection delay): the site's
	// DNS name no longer points at it.
	for _, a := range authQueryA(t, w.cdn.Authoritative(), "atl") {
		if a == s.Addr {
			t.Fatal("drained site's DNS name still points at it")
		}
	}
	w.converge()
	if _, err := w.cdn.RecoverSite("atl"); err != nil {
		t.Fatal(err)
	}
	w.converge()
	if got := w.net.RouteStateDigest(); got != before {
		t.Errorf("state after drain+recover differs:\n%s", firstDiffLine(before, got))
	}
}

func TestDrainSiteErrors(t *testing.T) {
	w := newWorld(t, 11)
	if _, err := w.cdn.DrainSite("atl"); err == nil {
		t.Fatal("drain before deploy should fail")
	}
	if err := w.cdn.Deploy(Unicast{}); err != nil {
		t.Fatal(err)
	}
	w.converge()
	if _, err := w.cdn.DrainSite("nope"); err == nil {
		t.Fatal("drain of unknown site should fail")
	}
	if _, err := w.cdn.DrainSite("atl"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.cdn.DrainSite("atl"); err == nil {
		t.Fatal("double drain should fail")
	}
}
