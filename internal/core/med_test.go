package core

import "testing"

func TestProactiveMEDSteering(t *testing.T) {
	w := newWorld(t, 30)
	if err := w.cdn.Deploy(ProactiveMED{}); err != nil {
		t.Fatal(err)
	}
	w.converge()
	// MED backups are scoped to shared neighbors, so control must be at
	// least as good as scoped prepending: every client lands on the
	// intended site (the backup never outranks the primary anywhere it is
	// heard).
	client := w.someClient(t)
	for _, s := range w.cdn.Sites() {
		got := w.cdn.CatchmentOf(client.ID, s.Addr)
		if got == nil {
			t.Fatalf("site %s unreachable", s.Code)
		}
		if got.Node != s.Node {
			t.Fatalf("MED steering to %s landed on %s", s.Code, got.Code)
		}
	}
}

func TestProactiveMEDNeverLosesControlAnywhere(t *testing.T) {
	w := newWorld(t, 31)
	if err := w.cdn.Deploy(ProactiveMED{BackupMED: 500}); err != nil {
		t.Fatal(err)
	}
	w.converge()
	// Across a broad sample of clients, MED-scoped backups must not steal
	// any primary traffic: MED loses to the primary at shared neighbors,
	// and non-shared neighbors never hear the backup.
	checked, steered := 0, 0
	for _, n := range w.topo.Nodes {
		if !n.Prefix.IsValid() || checked >= 80 {
			continue
		}
		checked++
		if w.cdn.CanSteer(n.ID, w.cdn.Site("atl")) {
			steered++
		}
	}
	if steered != checked {
		t.Fatalf("MED technique lost control for %d/%d clients", checked-steered, checked)
	}
}

func TestProactiveMEDFailover(t *testing.T) {
	w := newWorld(t, 32)
	if err := w.cdn.Deploy(ProactiveMED{}); err != nil {
		t.Fatal(err)
	}
	w.converge()
	client := w.someClient(t)
	failed := w.cdn.Site("atl")
	if _, err := w.cdn.FailSite("atl"); err != nil {
		t.Fatal(err)
	}
	w.converge()
	after := w.cdn.CatchmentOf(client.ID, failed.Addr)
	// atl shares its commercial provider's ASN with no other site, so
	// failover coverage depends on shared neighbors; the prefix must at
	// minimum not route to the dead site, and for sites with shared
	// neighbors it reaches a backup.
	if after != nil && after.Node == failed.Node {
		t.Fatal("traffic still reaches the failed site")
	}
	// A site whose neighbors overlap another's (sea1/sea2 share the sea
	// metro eyeballs) must regain reachability.
	w2 := newWorld(t, 32)
	if err := w2.cdn.Deploy(ProactiveMED{}); err != nil {
		t.Fatal(err)
	}
	w2.converge()
	sea2 := w2.cdn.Site("sea2")
	client2 := w2.someClient(t)
	_ = client2
	w2.cdn.FailSite("sea2")
	w2.converge()
	// Any target that can still reach the prefix must land on a healthy
	// site.
	got := w2.cdn.CatchmentOf(w2.someClient(t).ID, sea2.Addr)
	if got != nil && got.Node == sea2.Node {
		t.Fatal("sea2 still attracting traffic after failure")
	}
}

func TestProactiveMEDRecovery(t *testing.T) {
	w := newWorld(t, 33)
	if err := w.cdn.Deploy(ProactiveMED{}); err != nil {
		t.Fatal(err)
	}
	w.converge()
	client := w.someClient(t)
	w.cdn.FailSite("msn")
	w.converge()
	if _, err := w.cdn.RecoverSite("msn"); err != nil {
		t.Fatal(err)
	}
	w.converge()
	got := w.cdn.CatchmentOf(client.ID, w.cdn.Site("msn").Addr)
	if got == nil || got.Code != "msn" {
		t.Fatalf("after recovery client lands on %+v", got)
	}
}

func TestExtensionTechniquesDistinctNames(t *testing.T) {
	seen := map[string]bool{}
	for _, tech := range append(AllTechniques(), ExtensionTechniques()...) {
		if seen[tech.Name()] {
			t.Fatalf("duplicate technique name %q", tech.Name())
		}
		seen[tech.Name()] = true
	}
}
