package core

import (
	"fmt"
	"net/netip"
)

// IPv6 prefix plan. The paper frames per-site prefixes as "/24 or /48"
// (§4); the v6 plan mirrors the v4 one: a /44 covers the per-site /48s,
// with a separate /48 for pure anycast.
var (
	// SuperPrefix6 covers all per-site /48s.
	SuperPrefix6 = netip.MustParsePrefix("2001:db8:240::/44")
	// AnycastPrefix6 is the shared v6 prefix for pure anycast.
	AnycastPrefix6 = netip.MustParsePrefix("2001:db8:248::/48")
	// AnycastServiceAddr6 is the service address inside AnycastPrefix6.
	AnycastServiceAddr6 = netip.MustParseAddr("2001:db8:248::10")
)

// SitePrefix6 returns the /48 assigned to the i-th site.
func SitePrefix6(i int) netip.Prefix {
	a := SuperPrefix6.Addr().As16()
	a[5] += byte(i) // 2001:db8:24i::/48
	return netip.PrefixFrom(netip.AddrFrom16(a), 48)
}

// ServiceAddr6 returns the service address (::10) within a /48.
func ServiceAddr6(p netip.Prefix) netip.Addr {
	a := p.Addr().As16()
	a[15] = 0x10
	return netip.AddrFrom16(a)
}

// v6Counterpart maps a prefix of the v4 plan to its v6 twin. Announcements
// of unrelated prefixes (targets, scratch experiment prefixes) have no
// counterpart.
func (c *CDN) v6Counterpart(p netip.Prefix) (netip.Prefix, bool) {
	switch p {
	case SuperPrefix:
		return SuperPrefix6, true
	case AnycastPrefix:
		return AnycastPrefix6, true
	}
	for i, s := range c.sites {
		if p == s.Prefix {
			return SitePrefix6(i), true
		}
	}
	return netip.Prefix{}, false
}

// EnableDualStack mirrors every plan announcement onto the IPv6 prefix
// plan and publishes AAAA records alongside the A records. Call before
// Deploy. Since the BGP layer, FIBs, and forwarding are address-family
// agnostic, every technique's failover mechanics apply to the /48s exactly
// as to the /24s — which is the §4 claim this mode exists to demonstrate.
func (c *CDN) EnableDualStack() error {
	if c.technique != nil {
		return fmt.Errorf("core: enable dual stack before Deploy")
	}
	c.dualStack = true
	for i, s := range c.sites {
		s.Prefix6 = SitePrefix6(i)
		s.Addr6 = ServiceAddr6(s.Prefix6)
	}
	return nil
}

// DualStack reports whether the v6 mirror is active.
func (c *CDN) DualStack() bool { return c.dualStack }

// SteerAddr6 returns the IPv6 address DNS hands to clients the CDN wants
// at the given site under the active technique (the v6 twin of
// Technique.SteerAddr). Returns the zero Addr when dual stack is off.
func (c *CDN) SteerAddr6(s *Site) netip.Addr {
	if !c.dualStack || c.technique == nil {
		return netip.Addr{}
	}
	v4 := c.technique.SteerAddr(c, s)
	if v4 == AnycastServiceAddr {
		return AnycastServiceAddr6
	}
	for _, site := range c.sites {
		if v4 == site.Addr {
			return site.Addr6
		}
	}
	return netip.Addr{}
}
