package iptrie

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func mustPrefix(t *testing.T, s string) netip.Prefix {
	t.Helper()
	p, err := netip.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestInsertLookupExact(t *testing.T) {
	tr := New[string]()
	p := mustPrefix(t, "184.164.244.0/24")
	if err := tr.Insert(p, "site-a"); err != nil {
		t.Fatal(err)
	}
	got, ok := tr.Get(p)
	if !ok || got != "site-a" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
}

func TestLongestPrefixMatchPrefersMoreSpecific(t *testing.T) {
	tr := New[string]()
	tr.Insert(mustPrefix(t, "184.164.244.0/23"), "super")
	tr.Insert(mustPrefix(t, "184.164.244.0/24"), "specific")

	addr := netip.MustParseAddr("184.164.244.10")
	p, v, ok := tr.Lookup(addr)
	if !ok || v != "specific" || p.Bits() != 24 {
		t.Fatalf("Lookup = %v %q %v, want /24 specific", p, v, ok)
	}

	// Address in the superprefix but outside the /24 matches the /23.
	addr2 := netip.MustParseAddr("184.164.245.10")
	p2, v2, ok := tr.Lookup(addr2)
	if !ok || v2 != "super" || p2.Bits() != 23 {
		t.Fatalf("Lookup = %v %q %v, want /23 super", p2, v2, ok)
	}
}

func TestSuperprefixFallbackAfterDelete(t *testing.T) {
	// The proactive-superprefix mechanism in one test: when the /24
	// disappears, traffic falls through to the covering /23.
	tr := New[string]()
	tr.Insert(mustPrefix(t, "184.164.244.0/23"), "backup")
	tr.Insert(mustPrefix(t, "184.164.244.0/24"), "primary")
	addr := netip.MustParseAddr("184.164.244.77")

	if _, v, _ := tr.Lookup(addr); v != "primary" {
		t.Fatalf("before delete: got %q", v)
	}
	if !tr.Delete(mustPrefix(t, "184.164.244.0/24")) {
		t.Fatal("delete /24 failed")
	}
	_, v, ok := tr.Lookup(addr)
	if !ok || v != "backup" {
		t.Fatalf("after delete: got %q, %v; want backup", v, ok)
	}
}

func TestDeleteMissing(t *testing.T) {
	tr := New[int]()
	if tr.Delete(mustPrefix(t, "10.0.0.0/8")) {
		t.Fatal("deleting absent prefix reported true")
	}
	tr.Insert(mustPrefix(t, "10.0.0.0/8"), 1)
	if tr.Delete(mustPrefix(t, "10.0.0.0/16")) {
		t.Fatal("deleting absent sub-prefix reported true")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
}

func TestLookupNoMatch(t *testing.T) {
	tr := New[int]()
	tr.Insert(mustPrefix(t, "10.0.0.0/8"), 1)
	if _, _, ok := tr.Lookup(netip.MustParseAddr("11.0.0.1")); ok {
		t.Fatal("lookup outside any prefix matched")
	}
}

func TestDefaultRoute(t *testing.T) {
	tr := New[string]()
	tr.Insert(mustPrefix(t, "0.0.0.0/0"), "default")
	tr.Insert(mustPrefix(t, "10.0.0.0/8"), "ten")
	if _, v, _ := tr.Lookup(netip.MustParseAddr("8.8.8.8")); v != "default" {
		t.Fatalf("got %q, want default", v)
	}
	if _, v, _ := tr.Lookup(netip.MustParseAddr("10.1.2.3")); v != "ten" {
		t.Fatalf("got %q, want ten", v)
	}
}

func TestInsertReplacesValue(t *testing.T) {
	tr := New[int]()
	p := mustPrefix(t, "192.0.2.0/24")
	tr.Insert(p, 1)
	tr.Insert(p, 2)
	if v, _ := tr.Get(p); v != 2 {
		t.Fatalf("got %d, want 2", v)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
}

func TestIPv6LongestPrefixMatch(t *testing.T) {
	tr := New[string]()
	tr.Insert(netip.MustParsePrefix("2001:db8:240::/44"), "super")
	tr.Insert(netip.MustParsePrefix("2001:db8:244::/48"), "site")
	if _, v, ok := tr.Lookup(netip.MustParseAddr("2001:db8:244::10")); !ok || v != "site" {
		t.Fatalf("v6 lookup = %q, %v", v, ok)
	}
	if _, v, ok := tr.Lookup(netip.MustParseAddr("2001:db8:245::10")); !ok || v != "super" {
		t.Fatalf("v6 covering lookup = %q, %v", v, ok)
	}
	// The §3 superprefix mechanism works identically for /48s under a /44.
	tr.Delete(netip.MustParsePrefix("2001:db8:244::/48"))
	if _, v, _ := tr.Lookup(netip.MustParseAddr("2001:db8:244::10")); v != "super" {
		t.Fatalf("v6 fallback = %q", v)
	}
}

func TestFamiliesAreDisjoint(t *testing.T) {
	tr := New[string]()
	tr.Insert(netip.MustParsePrefix("0.0.0.0/0"), "v4-default")
	tr.Insert(netip.MustParsePrefix("::/0"), "v6-default")
	if _, v, _ := tr.Lookup(netip.MustParseAddr("10.0.0.1")); v != "v4-default" {
		t.Fatalf("v4 lookup crossed family: %q", v)
	}
	if _, v, _ := tr.Lookup(netip.MustParseAddr("2001:db8::1")); v != "v6-default" {
		t.Fatalf("v6 lookup crossed family: %q", v)
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
	ps := tr.Prefixes()
	if len(ps) != 2 {
		t.Fatalf("Prefixes = %v", ps)
	}
}

func TestIPv6HostRoute(t *testing.T) {
	tr := New[int]()
	host := netip.MustParsePrefix("2001:db8::1/128")
	tr.Insert(host, 7)
	if v, ok := tr.Get(host); !ok || v != 7 {
		t.Fatalf("v6 /128 get = %d, %v", v, ok)
	}
	if _, v, ok := tr.Lookup(netip.MustParseAddr("2001:db8::1")); !ok || v != 7 {
		t.Fatalf("v6 /128 lookup = %d, %v", v, ok)
	}
	if _, _, ok := tr.Lookup(netip.MustParseAddr("2001:db8::2")); ok {
		t.Fatal("v6 /128 matched wrong host")
	}
}

func TestHostRoute(t *testing.T) {
	tr := New[string]()
	tr.Insert(mustPrefix(t, "192.0.2.1/32"), "host")
	tr.Insert(mustPrefix(t, "192.0.2.0/24"), "net")
	if _, v, _ := tr.Lookup(netip.MustParseAddr("192.0.2.1")); v != "host" {
		t.Fatalf("got %q, want host", v)
	}
	if _, v, _ := tr.Lookup(netip.MustParseAddr("192.0.2.2")); v != "net" {
		t.Fatalf("got %q, want net", v)
	}
}

func TestWalkAndPrefixes(t *testing.T) {
	tr := New[int]()
	ps := []string{"10.0.0.0/8", "10.1.0.0/16", "192.0.2.0/24", "0.0.0.0/0"}
	for i, s := range ps {
		tr.Insert(mustPrefix(t, s), i)
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	got := tr.Prefixes()
	if len(got) != 4 {
		t.Fatalf("Prefixes len = %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if c := a.Addr().Compare(b.Addr()); c > 0 || (c == 0 && a.Bits() >= b.Bits()) {
			t.Fatalf("Prefixes not sorted: %v before %v", a, b)
		}
	}
	n := 0
	tr.Walk(func(p netip.Prefix, v int) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("Walk early-stop visited %d, want 2", n)
	}
}

func TestMaskedInsertCanonicalizes(t *testing.T) {
	tr := New[int]()
	// Non-canonical prefix: host bits set.
	p, err := netip.ParsePrefix("10.1.2.3/8")
	if err != nil {
		t.Fatal(err)
	}
	tr.Insert(p, 7)
	if v, ok := tr.Get(mustPrefix(t, "10.0.0.0/8")); !ok || v != 7 {
		t.Fatalf("canonical get = %d, %v", v, ok)
	}
}

// naive is a reference LPM implementation used by the property test.
type naiveEntry struct {
	p netip.Prefix
	v int
}

func naiveLookup(entries []naiveEntry, a netip.Addr) (netip.Prefix, int, bool) {
	best := -1
	var bp netip.Prefix
	var bv int
	for _, e := range entries {
		if e.p.Contains(a) && e.p.Bits() > best {
			best, bp, bv = e.p.Bits(), e.p, e.v
		}
	}
	return bp, bv, best >= 0
}

func randPrefix(r *rand.Rand) netip.Prefix {
	bits := r.Intn(33)
	v := r.Uint32()
	a := netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
	return netip.PrefixFrom(a, bits).Masked()
}

// Property: trie lookup agrees with a brute-force scan over all inserted
// prefixes, for random prefix sets and random probe addresses.
func TestLPMAgainstNaiveProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	f := func() bool {
		tr := New[int]()
		var entries []naiveEntry
		seen := map[netip.Prefix]int{}
		n := 1 + r.Intn(40)
		for i := 0; i < n; i++ {
			p := randPrefix(r)
			v := r.Intn(1000)
			tr.Insert(p, v)
			seen[p] = v
		}
		entries = entries[:0]
		for p, v := range seen {
			entries = append(entries, naiveEntry{p, v})
		}
		for probe := 0; probe < 50; probe++ {
			x := r.Uint32()
			a := netip.AddrFrom4([4]byte{byte(x >> 24), byte(x >> 16), byte(x >> 8), byte(x)})
			wp, wv, wok := naiveLookup(entries, a)
			gp, gv, gok := tr.Lookup(a)
			if wok != gok {
				return false
			}
			if wok && (wp != gp || wv != gv) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: r}); err != nil {
		t.Fatal(err)
	}
}

// Property: after inserting then deleting a random subset, lookups agree
// with the reference implementation over the surviving entries.
func TestInsertDeleteProperty(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	f := func() bool {
		tr := New[int]()
		live := map[netip.Prefix]int{}
		for i := 0; i < 60; i++ {
			p := randPrefix(r)
			switch r.Intn(3) {
			case 0, 1:
				v := r.Intn(100)
				tr.Insert(p, v)
				live[p] = v
			case 2:
				_, present := live[p]
				got := tr.Delete(p)
				if got != present {
					return false
				}
				delete(live, p)
			}
			if tr.Len() != len(live) {
				return false
			}
		}
		var entries []naiveEntry
		for p, v := range live {
			entries = append(entries, naiveEntry{p, v})
		}
		for probe := 0; probe < 30; probe++ {
			x := r.Uint32()
			a := netip.AddrFrom4([4]byte{byte(x >> 24), byte(x >> 16), byte(x >> 8), byte(x)})
			wp, wv, wok := naiveLookup(entries, a)
			gp, gv, gok := tr.Lookup(a)
			if wok != gok || (wok && (wp != gp || wv != gv)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: r}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLookup(b *testing.B) {
	tr := New[int]()
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		tr.Insert(randPrefix(r), i)
	}
	addrs := make([]netip.Addr, 1024)
	for i := range addrs {
		x := r.Uint32()
		addrs[i] = netip.AddrFrom4([4]byte{byte(x >> 24), byte(x >> 16), byte(x >> 8), byte(x)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(addrs[i%len(addrs)])
	}
}
