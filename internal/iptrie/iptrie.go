// Package iptrie implements a longest-prefix-match binary trie over IP
// prefixes, IPv4 and IPv6.
//
// The trie backs every FIB in the simulator as well as the route collectors'
// prefix indexes. It is a plain binary (path-uncompressed) trie per address
// family: prefixes are at most 32/128 bits deep, insertions in the simulator
// cluster on a handful of short prefixes, and lookups walk at most one node
// per bit, so the constant factors are small and the implementation stays
// obviously correct. The paper's techniques use per-site /24s; they apply
// identically to per-site /48s (§4), which is why both families are
// first-class here.
package iptrie

import (
	"fmt"
	"net/netip"
	"sort"
)

// Trie maps IP prefixes to values of type V with longest-prefix-match
// lookup semantics. IPv4 and IPv6 entries live in disjoint sub-tries:
// lookups never cross families (4-in-6 mapped addresses are treated as
// IPv6).
//
// The zero value is not usable; call New.
type Trie[V any] struct {
	root4 *node[V]
	root6 *node[V]
	size  int
}

type node[V any] struct {
	child [2]*node[V]
	val   V
	set   bool
}

// New returns an empty trie.
func New[V any]() *Trie[V] {
	return &Trie[V]{root4: &node[V]{}, root6: &node[V]{}}
}

// Len returns the number of prefixes stored.
func (t *Trie[V]) Len() int { return t.size }

// key extracts the address bytes, bit count, and family root selector.
func (t *Trie[V]) rootFor(a netip.Addr) (*node[V], []byte, int) {
	if a.Is4() {
		b := a.As4()
		return t.root4, b[:], 32
	}
	b := a.As16()
	return t.root6, b[:], 128
}

func bitAt(b []byte, i int) int {
	return int(b[i/8]>>(7-i%8)) & 1
}

// Insert stores val under prefix p, replacing any previous value for the
// exact prefix. The prefix is canonicalized (masked) before insertion.
func (t *Trie[V]) Insert(p netip.Prefix, val V) error {
	if !p.IsValid() {
		return fmt.Errorf("iptrie: invalid prefix %v", p)
	}
	p = p.Masked()
	cur, bits, max := t.rootFor(p.Addr())
	if p.Bits() > max {
		return fmt.Errorf("iptrie: prefix %v too long", p)
	}
	for i := 0; i < p.Bits(); i++ {
		b := bitAt(bits, i)
		if cur.child[b] == nil {
			cur.child[b] = &node[V]{}
		}
		cur = cur.child[b]
	}
	if !cur.set {
		t.size++
	}
	cur.val, cur.set = val, true
	return nil
}

// Delete removes the exact prefix p. It reports whether the prefix was
// present. Interior nodes are left in place; the simulator's tries churn the
// same prefixes repeatedly, so retaining the skeleton avoids allocation.
func (t *Trie[V]) Delete(p netip.Prefix) bool {
	if !p.IsValid() {
		return false
	}
	p = p.Masked()
	cur, bits, max := t.rootFor(p.Addr())
	if p.Bits() > max {
		return false
	}
	for i := 0; i < p.Bits(); i++ {
		cur = cur.child[bitAt(bits, i)]
		if cur == nil {
			return false
		}
	}
	if !cur.set {
		return false
	}
	var zero V
	cur.val, cur.set = zero, false
	t.size--
	return true
}

// Get returns the value stored under the exact prefix p.
func (t *Trie[V]) Get(p netip.Prefix) (V, bool) {
	var zero V
	if !p.IsValid() {
		return zero, false
	}
	p = p.Masked()
	cur, bits, max := t.rootFor(p.Addr())
	if p.Bits() > max {
		return zero, false
	}
	for i := 0; i < p.Bits(); i++ {
		cur = cur.child[bitAt(bits, i)]
		if cur == nil {
			return zero, false
		}
	}
	if !cur.set {
		return zero, false
	}
	return cur.val, true
}

// Lookup performs a longest-prefix-match for addr within its address
// family and returns the matched prefix and its value.
func (t *Trie[V]) Lookup(addr netip.Addr) (netip.Prefix, V, bool) {
	var (
		zero    V
		bestVal V
		bestLen = -1
	)
	if !addr.IsValid() {
		return netip.Prefix{}, zero, false
	}
	cur, bits, max := t.rootFor(addr)
	for i := 0; ; i++ {
		if cur.set {
			bestVal, bestLen = cur.val, i
		}
		if i == max {
			break
		}
		b := bitAt(bits, i)
		if cur.child[b] == nil {
			break
		}
		cur = cur.child[b]
	}
	if bestLen < 0 {
		return netip.Prefix{}, zero, false
	}
	p, err := addr.Prefix(bestLen)
	if err != nil {
		return netip.Prefix{}, zero, false
	}
	return p, bestVal, true
}

// Walk visits every stored prefix/value pair, IPv4 entries first, each
// family in ascending (address, length) order. If fn returns false, the
// walk stops.
func (t *Trie[V]) Walk(fn func(p netip.Prefix, val V) bool) {
	walkFamily(t.root4, make([]byte, 4), 32, fn, makePrefix4)
	walkFamily(t.root6, make([]byte, 16), 128, fn, makePrefix6)
}

func makePrefix4(b []byte, depth int) netip.Prefix {
	return netip.PrefixFrom(netip.AddrFrom4([4]byte(b)), depth)
}

func makePrefix6(b []byte, depth int) netip.Prefix {
	return netip.PrefixFrom(netip.AddrFrom16([16]byte(b)), depth)
}

func walkFamily[V any](root *node[V], bits []byte, max int, fn func(netip.Prefix, V) bool, mk func([]byte, int) netip.Prefix) bool {
	var rec func(n *node[V], depth int) bool
	rec = func(n *node[V], depth int) bool {
		if n == nil {
			return true
		}
		if n.set {
			if !fn(mk(bits, depth), n.val) {
				return false
			}
		}
		if depth == max {
			return true
		}
		if !rec(n.child[0], depth+1) {
			return false
		}
		bits[depth/8] |= 1 << (7 - depth%8)
		ok := rec(n.child[1], depth+1)
		bits[depth/8] &^= 1 << (7 - depth%8)
		return ok
	}
	return rec(root, 0)
}

// Prefixes returns all stored prefixes sorted by address then length
// (IPv4 before IPv6 per netip ordering).
func (t *Trie[V]) Prefixes() []netip.Prefix {
	out := make([]netip.Prefix, 0, t.size)
	t.Walk(func(p netip.Prefix, _ V) bool {
		out = append(out, p)
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if c := out[i].Addr().Compare(out[j].Addr()); c != 0 {
			return c < 0
		}
		return out[i].Bits() < out[j].Bits()
	})
	return out
}
