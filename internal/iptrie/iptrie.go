// Package iptrie implements a longest-prefix-match binary trie over IP
// prefixes, IPv4 and IPv6.
//
// The trie backs every FIB in the simulator as well as the route collectors'
// prefix indexes. It is a plain binary (path-uncompressed) trie per address
// family: prefixes are at most 32/128 bits deep, insertions in the simulator
// cluster on a handful of short prefixes, and lookups walk at most one node
// per bit, so the constant factors are small and the implementation stays
// obviously correct. The paper's techniques use per-site /24s; they apply
// identically to per-site /48s (§4), which is why both families are
// first-class here.
//
// Nodes live in one contiguous slab per trie and link by int32 index rather
// than pointer. The simulator rebuilds thousands of FIBs every time a
// converged world is restored, so this matters twice over: inserting a
// prefix costs amortized slice growth instead of one allocation per trie
// node, and (for pointer-free value types, like FIB entries) the garbage
// collector never scans the node slab at all.
package iptrie

import (
	"fmt"
	"net/netip"
	"sort"
)

// Trie maps IP prefixes to values of type V with longest-prefix-match
// lookup semantics. IPv4 and IPv6 entries live in disjoint sub-tries:
// lookups never cross families (4-in-6 mapped addresses are treated as
// IPv6).
//
// The zero value is not usable; call New.
type Trie[V any] struct {
	// nodes[root4] and nodes[root6] are the family roots. A child index of
	// 0 means "no child": index 0 is the IPv4 root, which is never anyone's
	// child, so it doubles as the nil sentinel.
	nodes []node[V]
	size  int
}

type node[V any] struct {
	child [2]int32
	val   V
	set   bool
}

const (
	root4 = int32(0)
	root6 = int32(1)
)

// New returns an empty trie.
func New[V any]() *Trie[V] {
	return &Trie[V]{nodes: make([]node[V], 2, 64)}
}

// newNode appends a fresh node to the slab and returns its index. The
// returned index stays valid across slab growth; node pointers do not, so
// code must re-index t.nodes after any newNode call.
func (t *Trie[V]) newNode() int32 {
	t.nodes = append(t.nodes, node[V]{})
	return int32(len(t.nodes) - 1)
}

// Len returns the number of prefixes stored.
func (t *Trie[V]) Len() int { return t.size }

// rootFor extracts the family root, address bytes, and bit count. The
// address bytes are written into buf (caller stack space) so the returned
// slice never forces a heap allocation.
func (t *Trie[V]) rootFor(a netip.Addr, buf *[16]byte) (int32, []byte, int) {
	if a.Is4() {
		b := a.As4()
		copy(buf[:4], b[:])
		return root4, buf[:4], 32
	}
	*buf = a.As16()
	return root6, buf[:], 128
}

func bitAt(b []byte, i int) int {
	return int(b[i/8]>>(7-i%8)) & 1
}

// Insert stores val under prefix p, replacing any previous value for the
// exact prefix. The prefix is canonicalized (masked) before insertion.
func (t *Trie[V]) Insert(p netip.Prefix, val V) error {
	if !p.IsValid() {
		return fmt.Errorf("iptrie: invalid prefix %v", p)
	}
	p = p.Masked()
	var buf [16]byte
	cur, bits, max := t.rootFor(p.Addr(), &buf)
	if p.Bits() > max {
		return fmt.Errorf("iptrie: prefix %v too long", p)
	}
	for i := 0; i < p.Bits(); i++ {
		b := bitAt(bits, i)
		next := t.nodes[cur].child[b]
		if next == 0 {
			next = t.newNode()
			t.nodes[cur].child[b] = next
		}
		cur = next
	}
	n := &t.nodes[cur]
	if !n.set {
		t.size++
	}
	n.val, n.set = val, true
	return nil
}

// Delete removes the exact prefix p. It reports whether the prefix was
// present. Interior nodes are left in place; the simulator's tries churn the
// same prefixes repeatedly, so retaining the skeleton avoids allocation.
func (t *Trie[V]) Delete(p netip.Prefix) bool {
	if !p.IsValid() {
		return false
	}
	p = p.Masked()
	var buf [16]byte
	cur, bits, max := t.rootFor(p.Addr(), &buf)
	if p.Bits() > max {
		return false
	}
	for i := 0; i < p.Bits(); i++ {
		cur = t.nodes[cur].child[bitAt(bits, i)]
		if cur == 0 {
			return false
		}
	}
	n := &t.nodes[cur]
	if !n.set {
		return false
	}
	var zero V
	n.val, n.set = zero, false
	t.size--
	return true
}

// Get returns the value stored under the exact prefix p.
func (t *Trie[V]) Get(p netip.Prefix) (V, bool) {
	var zero V
	if !p.IsValid() {
		return zero, false
	}
	p = p.Masked()
	var buf [16]byte
	cur, bits, max := t.rootFor(p.Addr(), &buf)
	if p.Bits() > max {
		return zero, false
	}
	for i := 0; i < p.Bits(); i++ {
		cur = t.nodes[cur].child[bitAt(bits, i)]
		if cur == 0 {
			return zero, false
		}
	}
	n := &t.nodes[cur]
	if !n.set {
		return zero, false
	}
	return n.val, true
}

// Lookup performs a longest-prefix-match for addr within its address
// family and returns the matched prefix and its value.
func (t *Trie[V]) Lookup(addr netip.Addr) (netip.Prefix, V, bool) {
	var (
		zero    V
		bestVal V
		bestLen = -1
	)
	if !addr.IsValid() {
		return netip.Prefix{}, zero, false
	}
	var buf [16]byte
	cur, bits, max := t.rootFor(addr, &buf)
	for i := 0; ; i++ {
		n := &t.nodes[cur]
		if n.set {
			bestVal, bestLen = n.val, i
		}
		if i == max {
			break
		}
		b := bitAt(bits, i)
		if n.child[b] == 0 {
			break
		}
		cur = n.child[b]
	}
	if bestLen < 0 {
		return netip.Prefix{}, zero, false
	}
	p, err := addr.Prefix(bestLen)
	if err != nil {
		return netip.Prefix{}, zero, false
	}
	return p, bestVal, true
}

// Walk visits every stored prefix/value pair, IPv4 entries first, each
// family in ascending (address, length) order. If fn returns false, the
// walk stops.
func (t *Trie[V]) Walk(fn func(p netip.Prefix, val V) bool) {
	if !t.walkFamily(root4, make([]byte, 4), 0, 32, fn, makePrefix4) {
		return
	}
	t.walkFamily(root6, make([]byte, 16), 0, 128, fn, makePrefix6)
}

func makePrefix4(b []byte, depth int) netip.Prefix {
	return netip.PrefixFrom(netip.AddrFrom4([4]byte(b)), depth)
}

func makePrefix6(b []byte, depth int) netip.Prefix {
	return netip.PrefixFrom(netip.AddrFrom16([16]byte(b)), depth)
}

func (t *Trie[V]) walkFamily(n int32, bits []byte, depth, max int, fn func(netip.Prefix, V) bool, mk func([]byte, int) netip.Prefix) bool {
	if t.nodes[n].set {
		if !fn(mk(bits, depth), t.nodes[n].val) {
			return false
		}
	}
	if depth == max {
		return true
	}
	if c := t.nodes[n].child[0]; c != 0 {
		if !t.walkFamily(c, bits, depth+1, max, fn, mk) {
			return false
		}
	}
	if c := t.nodes[n].child[1]; c != 0 {
		bits[depth/8] |= 1 << (7 - depth%8)
		ok := t.walkFamily(c, bits, depth+1, max, fn, mk)
		bits[depth/8] &^= 1 << (7 - depth%8)
		if !ok {
			return false
		}
	}
	return true
}

// Prefixes returns all stored prefixes sorted by address then length
// (IPv4 before IPv6 per netip ordering).
func (t *Trie[V]) Prefixes() []netip.Prefix {
	out := make([]netip.Prefix, 0, t.size)
	t.Walk(func(p netip.Prefix, _ V) bool {
		out = append(out, p)
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if c := out[i].Addr().Compare(out[j].Addr()); c != 0 {
			return c < 0
		}
		return out[i].Bits() < out[j].Bits()
	})
	return out
}
