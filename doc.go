// Package bestofboth reproduces "The Best of Both Worlds: High
// Availability CDN Routing Without Compromising Control" (Zhu, Vermeulen,
// Cunha, Katz-Bassett, Calder — IMC 2022) as a self-contained Go library.
//
// The paper's techniques — reactive-anycast and proactive-prepending —
// combine unicast's precise client-to-site control with anycast's fast
// BGP-driven failover. Because evaluating them requires announcing real
// anycast prefixes from a multi-site deployment, this reproduction builds
// the whole substrate in simulation: an AS-level Internet with Gao-Rexford
// routing policies (internal/topology, internal/bgp), FIB-driven packet
// forwarding (internal/dataplane), DNS with TTL-violating clients
// (internal/dns), RIS-style route collectors (internal/collector), the CDN
// controller and all six routing techniques (internal/core), and the full
// evaluation harness (internal/experiment, internal/trace).
//
// Entry points:
//
//   - cmd/cdnsim regenerates every figure and table from the paper.
//   - cmd/topogen generates and inspects the synthetic Internet.
//   - examples/ contains runnable walkthroughs of the public API.
//   - bench_test.go benchmarks each experiment and the design ablations.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for measured
// results next to the paper's.
package bestofboth
